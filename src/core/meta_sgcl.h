// Meta-SGCL — the paper's primary contribution (§IV).
//
// Objective (double ELBO, Eq. 16/27-28, loss form):
//   L = L_rs1 + L_rs2 + beta * (L_kl1 + L_kl2) + alpha * L_cl
// where L_rs* are next-item cross-entropies of the two generated views,
// L_kl* their Gaussian-prior KLs (Eq. 24-25), and L_cl the InfoNCE
// mutual-information bound between the two sequence-level latents (Eq. 26).
// (The paper's Eq. 27 carries sign typos — written literally it would
// *maximise* the KL and the negative InfoNCE; we implement the standard
// minimisation form that its Eq. 3/16 derivation implies.)
//
// Meta-optimized two-step training (§IV.E.2):
//   stage 1: update Enc_mu, Enc_sigma, Dec (and backbone) by the full loss;
//   stage 2: freeze them, re-encode the batch, and update only the meta head
//            Enc_sigma' by the contrastive loss (Eq. 26), so the second view
//            is adapted to the downstream task rather than drawn blindly.
// TrainingMode::kJoint disables the split (the Fig. 3 comparison).
#ifndef MSGCL_CORE_META_SGCL_H_
#define MSGCL_CORE_META_SGCL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/seq2seq_generator.h"
#include "eval/session.h"
#include "models/model.h"
#include "models/trainer.h"
#include "nn/nn.h"
#include "obs/obs.h"

namespace msgcl {
namespace core {

/// Joint single-step training vs the paper's meta-optimized two-step strategy.
enum class TrainingMode { kJoint, kMetaTwoStep };

/// Meta-SGCL hyper-parameters. Defaults follow §V.A / §V.E
/// (alpha ~ 0.03, beta in 0.1..0.5, tau = 1, dot-product similarity).
struct MetaSgclConfig {
  models::BackboneConfig backbone;
  float alpha = 0.03f;  // contrastive weight (Fig. 4a-b)
  float beta = 0.2f;    // KL weight (Fig. 4c-d)
  float tau = 1.0f;     // InfoNCE temperature (Table V)
  nn::Similarity similarity = nn::Similarity::kDot;  // Table VII
  TrainingMode mode = TrainingMode::kMetaTwoStep;    // Fig. 3
  float meta_lr_scale = 1.0f;  // stage-2 lr = meta_lr_scale * lr
  int64_t meta_steps = 1;      // stage-2 iterations per batch

  // Ablation switches (Table III): use_cl=false drops the second view and
  // the contrastive term ("-cl"); use_kl=false drops the KL term ("-kl");
  // both false degenerate to a deterministic SASRec-style model ("-clkl").
  bool use_cl = true;
  bool use_kl = true;

  // Linear KL annealing (§IV.E.2); 0 disables.
  int64_t kl_anneal_steps = 100;

  // Decode z through the Transformer decoder (§IV.C.2) before scoring.
  // When false, scores come from the latent directly (Eq. 21-22's
  // y = z M^T reading); cheaper and often stronger at small scale.
  bool use_decoder = true;

  Status Validate() const {
    if (alpha < 0.0f || beta < 0.0f) {
      return Status::InvalidArgument("alpha and beta must be non-negative");
    }
    if (tau <= 0.0f) return Status::InvalidArgument("tau must be positive");
    if (meta_lr_scale <= 0.0f) {
      return Status::InvalidArgument("meta_lr_scale must be positive");
    }
    return Status::Ok();
  }
};

/// The Meta-SGCL recommender.
class MetaSgcl : public models::Recommender,
                 public nn::Module,
                 public eval::SessionScorer {
 public:
  MetaSgcl(const MetaSgclConfig& config, const models::TrainConfig& train, Rng rng)
      : config_(config), train_(train), rng_(rng), generator_(config.backbone, rng_) {
    MSGCL_CHECK_MSG(config.Validate().ok(), config.Validate().ToString());
    RegisterChild("generator", &generator_);
  }

  std::string name() const override {
    if (!config_.use_cl && !config_.use_kl) return "Meta-SGCL(-clkl)";
    if (!config_.use_cl) return "Meta-SGCL(-cl)";
    if (!config_.use_kl) return "Meta-SGCL(-kl)";
    return config_.mode == TrainingMode::kJoint ? "Meta-SGCL(joint)" : "Meta-SGCL";
  }

  Status Fit(const data::SequenceDataset& ds) override {
    nn::KlAnnealing anneal(config_.beta, config_.kl_anneal_steps);
    int64_t global_step = 0;

    if (config_.mode == TrainingMode::kJoint || !config_.use_cl) {
      // Single optimizer over everything; one pass per batch.
      nn::Adam opt(Parameters(), train_.lr);
      auto step = [&](const data::Batch& batch, Rng& rng) {
        opt.ZeroGrad();
        Tensor loss = FullLoss(batch, rng, anneal.Weight(global_step++));
        loss.Backward();
        if (train_.grad_clip > 0.0f) {
          obs::RecordStepScalar("grad_norm",
                                nn::ClipGradNorm(Parameters(), train_.grad_clip));
        }
        opt.Step();
        return loss.item();
      };
      return models::FitLoop(*this, *this, ds, train_, step, {&opt});
    }

    // Meta-optimized two-step training: disjoint optimizers over the two
    // parameter groups. Stepping only one group per stage implements the
    // paper's freezing without touching the autograd graph.
    nn::Adam opt_main(generator_.MainParameters(), train_.lr);
    nn::Adam opt_meta(generator_.MetaParameters(), train_.lr * config_.meta_lr_scale);
    auto step = [&](const data::Batch& batch, Rng& rng) {
      // ---- Stage 1: full loss -> Enc_mu, Enc_sigma, Dec, backbone.
      ZeroGrad();
      Tensor loss = FullLoss(batch, rng, anneal.Weight(global_step++));
      loss.Backward();
      if (train_.grad_clip > 0.0f) {
        obs::RecordStepScalar(
            "grad_norm", nn::ClipGradNorm(generator_.MainParameters(), train_.grad_clip));
      }
      opt_main.Step();

      // ---- Stage 2: re-encode with the just-updated weights; contrastive
      // loss only -> Enc_sigma'.
      ZeroGrad();
      if (batch.batch_size > 1) {
        for (int64_t ms = 0; ms < config_.meta_steps; ++ms) {
          Seq2SeqOutput out = generator_.Forward(batch, rng, /*sample=*/true,
                                                 /*second_view=*/true, config_.use_decoder);
          Tensor cl = ContrastiveLoss(out, batch);
          cl.Backward();
          if (train_.grad_clip > 0.0f) {
            nn::ClipGradNorm(generator_.MetaParameters(), train_.grad_clip);
          }
          opt_meta.Step();
          ZeroGrad();
        }
      }
      return loss.item();
    };
    return models::FitLoop(*this, *this, ds, train_, step, {&opt_main, &opt_meta});
  }

  /// The double-ELBO training loss for one batch (Eq. 27-28 in loss form).
  Tensor FullLoss(const data::Batch& batch, Rng& rng, float beta_weight) const {
    const bool sample = config_.use_kl || config_.use_cl;
    const bool second = config_.use_cl && batch.batch_size > 1;
    Seq2SeqOutput out = generator_.Forward(batch, rng, sample, second, config_.use_decoder);
    const int64_t D = generator_.backbone().config().dim;
    const int64_t M = batch.batch_size * batch.seq_len;

    Tensor loss = CrossEntropyLogits(generator_.LogitsAll(out.h_dec.Reshape({M, D})),
                                     batch.targets, /*ignore_index=*/0);  // L_rs1
    double rec_term = loss.item();
    double kl_term = 0.0;
    double cl_term = 0.0;
    std::vector<uint8_t> valid(batch.key_padding.size());
    for (size_t i = 0; i < valid.size(); ++i) valid[i] = batch.key_padding[i] ? 0 : 1;

    if (config_.use_kl) {
      Tensor kl1 = nn::GaussianKl(out.mu, out.logvar, &valid).MulScalar(beta_weight);
      kl_term += kl1.item();
      loss = loss.Add(kl1);  // L_kl1
    }
    if (second) {
      Tensor rs2 = CrossEntropyLogits(generator_.LogitsAll(out.h_dec_prime.Reshape({M, D})),
                                      batch.targets, /*ignore_index=*/0);
      rec_term += rs2.item();
      loss = loss.Add(rs2);  // L_rs2
      if (config_.use_kl) {
        Tensor kl2 =
            nn::GaussianKl(out.mu, out.logvar_prime, &valid).MulScalar(beta_weight);
        kl_term += kl2.item();
        loss = loss.Add(kl2);  // L_kl2
      }
      Tensor cl = ContrastiveLoss(out, batch).MulScalar(config_.alpha);
      cl_term = cl.item();
      loss = loss.Add(cl);  // L_cl
    }
    // Per-step loss decomposition for the telemetry CSV (DESIGN.md §8):
    // FitLoop drains the means of these once per epoch.
    obs::RecordStepScalar("loss/rec", rec_term);
    obs::RecordStepScalar("loss/kl", kl_term);
    obs::RecordStepScalar("loss/cl", cl_term);
    return loss;
  }

  /// Eq. 26: InfoNCE between the two sequence-level latents.
  Tensor ContrastiveLoss(const Seq2SeqOutput& out, const data::Batch& batch) const {
    MSGCL_CHECK(out.has_second_view());
    const int64_t B = batch.batch_size, T = batch.seq_len;
    const int64_t D = generator_.backbone().config().dim;
    Tensor z = out.z.Narrow(1, T - 1, 1).Reshape({B, D});
    Tensor zp = out.z_prime.Narrow(1, T - 1, 1).Reshape({B, D});
    return nn::InfoNce(z, zp, config_.tau, config_.similarity);
  }

  std::vector<float> ScoreAll(const data::Batch& batch) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Tensor logits = generator_.LogitsAll(LastHidden(batch));
    SetTraining(was_training);
    return logits.ToVector();
  }

  /// Fused serving path: same eval-mode forward as ScoreAll, then the
  /// backbone's blocked dot + bounded-heap selection instead of full logits.
  std::vector<eval::TopKList> ScoreTopK(const data::Batch& batch,
                                        const eval::TopKOptions& opt) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    std::vector<eval::TopKList> topk =
        generator_.backbone().ScoreTopKFused(LastHidden(batch), batch, opt);
    SetTraining(was_training);
    return topk;
  }

  // ---- eval::SessionScorer (incremental serving, DESIGN.md §12) -----------
  //
  // Inference is deterministic (z = mu), so the session state is one cache
  // per stack the eval forward runs: encoder, plus decoder when configured.

  int64_t session_capacity() const override {
    return generator_.backbone().config().max_len;
  }
  int64_t session_dim() const override {
    return generator_.backbone().config().dim;
  }

  void EncodeSession(const std::vector<int32_t>& window,
                     eval::SessionState& state) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    state.items.clear();
    state.items.reserve(static_cast<size_t>(session_capacity()));
    generator_.InitSessionCaches(state.stacks, config_.use_decoder);
    Tensor h = generator_.EncodeSessionCold(window, state.stacks,
                                            config_.use_decoder, rng);
    state.h_last = models::SasBackbone::LastPosition(h).ToVector();
    state.items.assign(window.begin(), window.end());
    SetTraining(was_training);
  }

  void AppendSession(int32_t item, eval::SessionState& state) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Rng rng(0);
    Tensor h = generator_.AppendSessionItem(
        item, static_cast<int64_t>(state.items.size()), state.stacks,
        config_.use_decoder, rng);
    state.h_last = h.ToVector();  // [1, 1, dim] — dim floats
    state.items.push_back(item);
    SetTraining(was_training);
  }

  std::vector<eval::TopKList> ScoreSessionHidden(
      const std::vector<float>& hidden, int64_t rows,
      const eval::TopKOptions& opt) override {
    NoGradGuard guard;
    const bool was_training = training();
    SetTraining(false);
    Tensor h = Tensor::FromVector({rows, session_dim()}, hidden);
    std::vector<eval::TopKList> out =
        generator_.backbone().ScoreTopKFusedRows(h, opt);
    SetTraining(was_training);
    return out;
  }

  const Seq2SeqGenerator& generator() const { return generator_; }
  const MetaSgclConfig& config() const { return config_; }

 private:
  /// Eval-mode sequence representation at the final position: [B, dim].
  /// Shared by ScoreAll and ScoreTopK so both paths are bit-identical.
  Tensor LastHidden(const data::Batch& batch) {
    Rng rng(0);
    Seq2SeqOutput out = generator_.Forward(batch, rng, /*sample=*/false,
                                           /*second_view=*/false, config_.use_decoder);
    return models::SasBackbone::LastPosition(out.h_dec);
  }

  MetaSgclConfig config_;
  models::TrainConfig train_;
  Rng rng_;
  Seq2SeqGenerator generator_;
};

}  // namespace core
}  // namespace msgcl

#endif  // MSGCL_CORE_META_SGCL_H_
