// The Seq2Seq generator of Meta-SGCL (paper §IV.C-D): a variational
// autoencoder whose encoder and decoder are both Transformers.
//
//   encoder:  sequence -> F (self-attention states)            (Eq. 5-10)
//   heads:    mu = Enc_mu(F), logvar = Enc_sigma(F)            (Eq. 11)
//             logvar' = Enc_sigma'(F)  (the *meta* head)       (Eq. 14)
//   sample:   z = mu + sigma  * eps                            (Eq. 12)
//             z' = mu + sigma' * eps'                          (Eq. 15)
//   decoder:  z -> hidden states used for next-item scores     (Eq. 13, 21-22)
//
// Feeding the same sequence through both variance heads yields two
// generatively-augmented views (z, z') of one input — the paper's
// "generative-based augmentation" — without editing the sequence itself.
#ifndef MSGCL_CORE_SEQ2SEQ_GENERATOR_H_
#define MSGCL_CORE_SEQ2SEQ_GENERATOR_H_

#include <vector>

#include "models/backbone.h"
#include "nn/nn.h"

namespace msgcl {
namespace core {

/// One forward pass through the generator.
struct Seq2SeqOutput {
  Tensor mu;            // [B, T, D] posterior mean (shared by both views)
  Tensor logvar;        // [B, T, D] log-variance from Enc_sigma
  Tensor logvar_prime;  // [B, T, D] log-variance from Enc_sigma' (meta head)
  Tensor z;             // [B, T, D] first-view latent
  Tensor z_prime;       // [B, T, D] second-view latent (defined iff two views)
  Tensor h_dec;         // [B, T, D] decoder states of the first view
  Tensor h_dec_prime;   // [B, T, D] decoder states of the second view

  bool has_second_view() const { return z_prime.defined(); }
};

/// Transformer-VAE Seq2Seq generator with the paper's twin variance heads.
class Seq2SeqGenerator : public nn::Module {
 public:
  Seq2SeqGenerator(const models::BackboneConfig& config, Rng& rng)
      : backbone_(config, rng),
        enc_mu_(config.dim, config.dim, rng),
        enc_logvar_(config.dim, config.dim, rng),
        enc_logvar_prime_(config.dim, config.dim, rng),
        decoder_({config.dim, config.heads, config.layers, config.dropout}, rng) {
    RegisterChild("backbone", &backbone_);
    RegisterChild("enc_mu", &enc_mu_);
    RegisterChild("enc_logvar", &enc_logvar_);
    RegisterChild("enc_logvar_prime", &enc_logvar_prime_);
    RegisterChild("decoder", &decoder_);
    // Start both variance heads at small sigma (~0.14) so early training is
    // reconstruction-driven; the KL term later pulls sigma toward the prior.
    enc_logvar_.InitBiasConstant(kLogVarBiasInit);
    enc_logvar_prime_.InitBiasConstant(kLogVarBiasInit);
  }

  /// Initial log-variance bias shared by all variational models in this repo.
  static constexpr float kLogVarBiasInit = -4.0f;

  /// Runs encoder, variance head(s), reparameterisation and decoder.
  ///
  /// `sample` = false makes z = mu deterministically (inference and the
  /// "-clkl" ablation). `second_view` adds the Enc_sigma' path.
  /// `use_decoder` = false skips the Transformer decoder and scores from the
  /// latent directly (the paper's Eq. 21-22 reading, where log p(s|z) is
  /// "formalized as a next-item recommendation task" with y = z M^T);
  /// h_dec then aliases z.
  Seq2SeqOutput Forward(const data::Batch& batch, Rng& rng, bool sample,
                        bool second_view, bool use_decoder = true) const {
    Seq2SeqOutput out;
    Tensor f = backbone_.Encode(batch, /*causal=*/true, rng);
    out.mu = enc_mu_.Forward(f);
    out.logvar = enc_logvar_.Forward(f);
    out.z = sample ? Reparameterize(out.mu, out.logvar, rng) : out.mu;
    out.h_dec = use_decoder
                    ? decoder_.Forward(out.z, /*causal=*/true, &batch.key_padding, rng)
                    : out.z;
    if (second_view) {
      out.logvar_prime = enc_logvar_prime_.Forward(f);
      out.z_prime = sample ? Reparameterize(out.mu, out.logvar_prime, rng) : out.mu;
      out.h_dec_prime =
          use_decoder
              ? decoder_.Forward(out.z_prime, /*causal=*/true, &batch.key_padding, rng)
              : out.z_prime;
    }
    return out;
  }

  /// Weight-tied all-item logits (Eq. 22): h [M, D] -> [M, num_items + 1].
  Tensor LogitsAll(const Tensor& h) const { return backbone_.LogitsAll(h); }

  // ---- Incremental session path (serving, DESIGN.md §12) -------------------
  //
  // Inference is deterministic (z = mu), so the session state is one KvCache
  // for the backbone encoder plus, when the decoder runs, a second one for
  // the decoder stack; the per-position Enc_mu projection is row-wise and
  // needs no cache.

  /// Sizes the per-stack caches: stacks[0] = encoder, stacks[1] = decoder
  /// (present iff `use_decoder`).
  void InitSessionCaches(std::vector<nn::KvCache>& stacks, bool use_decoder) const {
    stacks.assign(use_decoder ? 2 : 1, nn::KvCache());
    backbone_.InitSessionCache(stacks[0]);
    if (use_decoder) decoder_.InitCache(stacks[1], backbone_.config().max_len);
  }

  /// Cold session encode (inference path: z = mu, no sampling): returns the
  /// decoder hidden states [1, L, dim] (or the latent when `use_decoder` is
  /// false), capturing K/V of every stack.
  Tensor EncodeSessionCold(const std::vector<int32_t>& window,
                           std::vector<nn::KvCache>& stacks, bool use_decoder,
                           Rng& rng) const {
    Tensor f = backbone_.EncodeSessionCold(window, stacks[0], rng);
    Tensor z = enc_mu_.Forward(f);
    if (!use_decoder) return z;
    // Session layout has no padding, so nullptr builds the same (causal-only)
    // mask an all-zero key_padding vector would.
    return decoder_.Forward(z, /*causal=*/true, /*key_padding=*/nullptr, rng,
                            /*skip_layer=*/-1, &stacks[1]);
  }

  /// Warm session step: appends one item at position `pos` through encoder,
  /// mu head and (optionally) decoder — bit-identical to the last row of
  /// EncodeSessionCold over the extended window.
  Tensor AppendSessionItem(int32_t item, int64_t pos,
                           std::vector<nn::KvCache>& stacks, bool use_decoder,
                           Rng& rng) const {
    Tensor f = backbone_.AppendSessionItem(item, pos, stacks[0], rng);
    Tensor z = enc_mu_.Forward(f);
    if (!use_decoder) return z;
    return decoder_.ForwardIncremental(z, stacks[1], rng);
  }

  /// Stage-1 parameter group: Enc_mu, Enc_sigma, Dec and the backbone.
  std::vector<Tensor> MainParameters() const {
    std::vector<Tensor> out = backbone_.Parameters();
    for (auto& p : enc_mu_.Parameters()) out.push_back(p);
    for (auto& p : enc_logvar_.Parameters()) out.push_back(p);
    for (auto& p : decoder_.Parameters()) out.push_back(p);
    return out;
  }

  /// Stage-2 (meta) parameter group: Enc_sigma' only.
  std::vector<Tensor> MetaParameters() const { return enc_logvar_prime_.Parameters(); }

  const models::SasBackbone& backbone() const { return backbone_; }

 private:
  static Tensor Reparameterize(const Tensor& mu, const Tensor& logvar, Rng& rng) {
    Tensor sigma = logvar.MulScalar(0.5f).Exp();
    return mu.Add(sigma.Mul(Tensor::Randn(mu.shape(), rng)));
  }

  models::SasBackbone backbone_;
  nn::Linear enc_mu_;
  nn::Linear enc_logvar_;
  nn::Linear enc_logvar_prime_;
  nn::TransformerEncoder decoder_;
};

}  // namespace core
}  // namespace msgcl

#endif  // MSGCL_CORE_SEQ2SEQ_GENERATOR_H_
