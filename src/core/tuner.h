// Grid-search tuning for Meta-SGCL's key hyper-parameters (alpha, beta, tau
// — the knobs the paper's RQ4 studies). Each candidate is trained with the
// supplied TrainConfig and scored by validation NDCG@10; the best full
// configuration is returned for a final training run.
#ifndef MSGCL_CORE_TUNER_H_
#define MSGCL_CORE_TUNER_H_

#include <cstdio>
#include <vector>

#include "core/meta_sgcl.h"
#include "eval/evaluator.h"

namespace msgcl {
namespace core {

/// The grid to explore. Empty axes keep the base config's value.
struct TuneGrid {
  std::vector<float> alphas;
  std::vector<float> betas;
  std::vector<float> taus;
};

/// One evaluated grid point.
struct TuneResult {
  MetaSgclConfig config;
  double val_ndcg10 = 0.0;
};

/// Trains one model per grid point and returns all results, best first.
/// Deterministic: each candidate trains from the same seed.
inline std::vector<TuneResult> GridSearch(const MetaSgclConfig& base,
                                          const models::TrainConfig& train,
                                          const data::SequenceDataset& ds, TuneGrid grid,
                                          uint64_t seed = 1234, bool verbose = false) {
  if (grid.alphas.empty()) grid.alphas = {base.alpha};
  if (grid.betas.empty()) grid.betas = {base.beta};
  if (grid.taus.empty()) grid.taus = {base.tau};

  eval::EvalConfig eval_cfg;
  eval_cfg.max_len = train.max_len;

  std::vector<TuneResult> results;
  for (float alpha : grid.alphas) {
    for (float beta : grid.betas) {
      for (float tau : grid.taus) {
        MetaSgclConfig cfg = base;
        cfg.alpha = alpha;
        cfg.beta = beta;
        cfg.tau = tau;
        MetaSgcl model(cfg, train, Rng(seed));
        if (Status s = model.Fit(ds); !s.ok()) {
          // A diverged candidate disqualifies itself rather than aborting
          // the whole sweep.
          if (verbose) {
            std::fprintf(stderr, "[tune] alpha=%.3f beta=%.2f tau=%.2f -> %s\n", alpha,
                         beta, tau, s.ToString().c_str());
          }
          continue;
        }
        TuneResult r;
        r.config = cfg;
        r.val_ndcg10 =
            eval::Evaluate(model, ds, eval::Split::kValidation, eval_cfg).ndcg10;
        if (verbose) {
          std::fprintf(stderr, "[tune] alpha=%.3f beta=%.2f tau=%.2f -> NDCG@10 %.4f\n",
                       alpha, beta, tau, r.val_ndcg10);
        }
        results.push_back(std::move(r));
      }
    }
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const TuneResult& a, const TuneResult& b) {
                     return a.val_ndcg10 > b.val_ndcg10;
                   });
  return results;
}

}  // namespace core
}  // namespace msgcl

#endif  // MSGCL_CORE_TUNER_H_
