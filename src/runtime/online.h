// Crash-safe online training loop (DESIGN.md §15): WAL ingestion →
// incremental warm-start training → drift gate → probation publish.
//
// OnlineTrainer closes the train→serve loop as a sequence of bounded
// *sessions*. Each session:
//
//   1. replays the interaction WAL (data/event_log.h) and builds a trailing
//      sliding-window SequenceDataset — torn tails and corrupt frames are
//      recovered around, never fatal;
//   2. warm-starts FitLoop from the serving checkpoint (v2 resumable state:
//      weights + optimizer moments + RNG) and trains a few more epochs,
//      retrying with backoff on failure instead of dying;
//   3. evaluates the candidate on the trailing holdout (the dataset's
//      leave-one-out validation split) and runs the drift gate: HR/NDCG
//      must not fall below a fraction of the last published baseline.
//      Regressing candidates are quarantined — moved aside on disk, never
//      swapped, serving untouched;
//   4. publishes survivors through serve::PublishController (golden-batch
//      swap gate + probation auto-rollback), and only after probation
//      passes commits the candidate checkpoint over the serving checkpoint
//      (atomic rename), so a crash anywhere in the session leaves the
//      previous serving state fully intact.
//
// Crash discipline: the serving checkpoint is the loop's sole durable
// truth. The candidate checkpoint is scratch until step 4's commit; an
// injected (or real) crash between train and publish orphans the candidate
// and nothing else. Restarting the loop re-reads the WAL and resumes from
// the serving checkpoint — no session state needs recovery.
//
// This header sits above data/, models/, and serve/ by design (it is the
// driver that ties the layers together) and is deliberately NOT part of the
// runtime.h umbrella: include it directly.
#ifndef MSGCL_RUNTIME_ONLINE_H_
#define MSGCL_RUNTIME_ONLINE_H_

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "data/event_log.h"
#include "eval/evaluator.h"
#include "models/model.h"
#include "nn/serialize.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "runtime/fault_injector.h"
#include "serve/publish.h"
#include "tensor/status.h"

namespace msgcl {
namespace runtime {

/// Drift-gate floors, relative to the last published baseline.
struct DriftConfig {
  /// Candidate HR@10 must be >= min_hr_frac * baseline HR@10 (and likewise
  /// NDCG@10). A fraction of 0 disables that relative bound.
  double min_hr_frac = 0.5;
  double min_ndcg_frac = 0.5;
  /// Absolute HR@10 floor applied even before a baseline exists (negative
  /// disables). This is what stops a poisoned model in the bootstrap
  /// session, when there is no baseline to regress from yet.
  double min_hr = -1.0;

  Status Validate() const {
    if (min_hr_frac < 0.0 || min_hr_frac > 1.0 || min_ndcg_frac < 0.0 ||
        min_ndcg_frac > 1.0) {
      return Status::InvalidArgument("drift fractions must be in [0, 1]");
    }
    if (min_hr > 1.0) return Status::InvalidArgument("min_hr must be <= 1");
    return Status::Ok();
  }
};

/// Tracks the last published model's holdout metrics and decides whether a
/// candidate has drifted below the floors. Every check exports
/// `online.drift.*` gauges so regressions are observable on dashboards even
/// when the gate passes.
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = {}) : config_(std::move(config)) {}

  const DriftConfig& config() const { return config_; }
  bool has_baseline() const { return has_baseline_; }
  const eval::Metrics& baseline() const { return baseline_; }

  /// Pins the metrics the next candidates are compared against. Called after
  /// every successful publish, so the floor tracks the serving model.
  void SetBaseline(const eval::Metrics& m) {
    baseline_ = m;
    has_baseline_ = true;
    Gauge("online.drift.baseline_hr10").Set(m.hr10);
    Gauge("online.drift.baseline_ndcg10").Set(m.ndcg10);
  }

  /// OK when the candidate clears every configured floor; InvalidArgument
  /// (with the failing bound in the message) when it regressed.
  Status Check(const eval::Metrics& candidate) {
    Gauge("online.drift.hr10").Set(candidate.hr10);
    Gauge("online.drift.ndcg10").Set(candidate.ndcg10);
    if (has_baseline_) {
      Gauge("online.drift.delta_hr10").Set(candidate.hr10 - baseline_.hr10);
      Gauge("online.drift.delta_ndcg10").Set(candidate.ndcg10 - baseline_.ndcg10);
    }
    if (config_.min_hr >= 0.0 && candidate.hr10 < config_.min_hr) {
      return Status::InvalidArgument(
          "drift gate: HR@10 " + std::to_string(candidate.hr10) +
          " below absolute floor " + std::to_string(config_.min_hr));
    }
    if (!has_baseline_) return Status::Ok();
    const double hr_floor = config_.min_hr_frac * baseline_.hr10;
    if (config_.min_hr_frac > 0.0 && candidate.hr10 < hr_floor) {
      return Status::InvalidArgument(
          "drift gate: HR@10 " + std::to_string(candidate.hr10) + " below " +
          std::to_string(hr_floor) + " (" + std::to_string(config_.min_hr_frac) +
          " x baseline " + std::to_string(baseline_.hr10) + ")");
    }
    const double ndcg_floor = config_.min_ndcg_frac * baseline_.ndcg10;
    if (config_.min_ndcg_frac > 0.0 && candidate.ndcg10 < ndcg_floor) {
      return Status::InvalidArgument(
          "drift gate: NDCG@10 " + std::to_string(candidate.ndcg10) + " below " +
          std::to_string(ndcg_floor) + " (" + std::to_string(config_.min_ndcg_frac) +
          " x baseline " + std::to_string(baseline_.ndcg10) + ")");
    }
    return Status::Ok();
  }

 private:
  static obs::Gauge& Gauge(const std::string& name) {
    return obs::Registry::Global().GetGauge(name);
  }

  DriftConfig config_;
  eval::Metrics baseline_;
  bool has_baseline_ = false;
};

/// Online-loop configuration.
struct OnlineTrainerConfig {
  std::string wal_dir;                 // interaction WAL directory
  std::string serving_checkpoint;      // durable truth; warm-start source
  std::string candidate_checkpoint;    // scratch until the post-probation commit
  std::string quarantine_dir;          // where gated-out candidates are moved
  int64_t epochs_per_session = 1;      // incremental epochs per session
  int64_t window = 0;                  // trailing events per user (0 = all)
  int32_t num_items = 0;               // serving catalogue size (> 0)
  int64_t min_events = 1;              // skip the session below this many WAL records
  int64_t max_session_retries = 2;     // training retries before giving up the session
  int64_t retry_backoff_us = 0;        // sleep between retries
  DriftConfig drift;
  std::string telemetry_path;          // per-session CSV rows (empty = off)
  OnlineFaultInjector* fault_injector = nullptr;  // non-owning

  Status Validate() const {
    if (wal_dir.empty()) return Status::InvalidArgument("wal_dir must be set");
    if (serving_checkpoint.empty() || candidate_checkpoint.empty()) {
      return Status::InvalidArgument("serving and candidate checkpoint paths must be set");
    }
    if (serving_checkpoint == candidate_checkpoint) {
      return Status::InvalidArgument(
          "serving and candidate checkpoints must be distinct paths");
    }
    if (num_items <= 0) return Status::InvalidArgument("num_items must be positive");
    if (epochs_per_session < 1) {
      return Status::InvalidArgument("epochs_per_session must be >= 1");
    }
    if (min_events < 1) return Status::InvalidArgument("min_events must be >= 1");
    if (max_session_retries < 0 || retry_backoff_us < 0 || window < 0) {
      return Status::InvalidArgument(
          "max_session_retries, retry_backoff_us, and window must be >= 0");
    }
    return drift.Validate();
  }
};

/// Counters for test assertions and the CLI report. The loop also exports
/// matching `online.*` registry counters.
struct OnlineLoopStats {
  int64_t sessions = 0;          // RunSession calls
  int64_t skipped = 0;           // sessions ended early (not enough events)
  int64_t trained = 0;           // sessions whose training converged
  int64_t train_failures = 0;    // individual failed training attempts
  int64_t retries = 0;           // retry attempts after a failure
  int64_t published = 0;         // candidates that survived probation
  int64_t quarantined = 0;       // candidates blocked by the drift gate
  int64_t publish_rejected = 0;  // candidates rejected by the swap gate
  int64_t rollbacks = 0;         // probation trips rolled back
  int64_t crashes = 0;           // injected crash-between-train-and-publish
  int64_t poisoned = 0;          // sessions whose update was poisoned
  int64_t poisoned_blocked = 0;  // poisoned candidates stopped before serving
  int64_t events_consumed = 0;   // WAL records fed into training (cumulative)
};

/// Drives the session loop. The model/ranker pair is the training replica
/// (NOT a serving slot — published weights are copied into the fleet through
/// the PublishController's staged swap).
class OnlineTrainer {
 public:
  /// Trains `model` on `ds` under `config` — e.g. SasRec::FitWith. Injected
  /// as a function so the driver works for any Recommender with a
  /// per-session-config entry point.
  using TrainFn =
      std::function<Status(const data::SequenceDataset& ds, const models::TrainConfig&)>;

  /// `model` and `ranker` are the same object seen through two interfaces
  /// (non-owning; must outlive the trainer). `base` supplies the static
  /// training knobs (lr, batch size, max_len, seed); the per-session epochs,
  /// resume, and checkpoint fields are overridden each session. `publisher`
  /// is optional: without one the loop commits gated candidates directly
  /// (ingest-and-train mode, used by the WAL drill).
  OnlineTrainer(nn::Module& model, eval::Ranker& ranker, TrainFn train,
                models::TrainConfig base, OnlineTrainerConfig config,
                serve::PublishController* publisher = nullptr)
      : model_(model),
        ranker_(ranker),
        train_(std::move(train)),
        base_(std::move(base)),
        config_(std::move(config)),
        drift_(config_.drift),
        publisher_(publisher) {
    const Status s = config_.Validate();
    if (!s.ok()) throw std::invalid_argument(s.ToString());
  }

  const OnlineLoopStats& stats() const { return stats_; }
  DriftMonitor& drift() { return drift_; }

  /// Runs one ingest → train → gate → publish session. Returns OK both for
  /// a published candidate and for a benign skip (not enough data, candidate
  /// quarantined/rolled back — the loop is healthy, the candidate was not);
  /// non-OK only when the session itself failed (training exhausted its
  /// retries, WAL unreadable, injected crash).
  Status RunSession() {
    const int64_t session = stats_.sessions++;
    Counter("online.sessions").Add(1);

    // 1. Ingest: replay the WAL, recovering around damage.
    auto recovered = data::ReadEventLog(config_.wal_dir);
    if (!recovered.ok()) return recovered.status();
    const data::EventLogRecovery& rec = recovered.value();
    if (static_cast<int64_t>(rec.events.size()) < config_.min_events) {
      ++stats_.skipped;
      return Status::Ok();
    }
    data::SlidingWindowOptions wopt;
    wopt.window = config_.window;
    wopt.num_items = config_.num_items;
    const data::SequenceDataset ds = data::BuildSlidingWindowDataset(rec.events, wopt);
    if (ds.num_users() == 0) {
      ++stats_.skipped;
      return Status::Ok();
    }
    stats_.events_consumed += static_cast<int64_t>(rec.events.size());

    // 2. Train: warm-start from the serving checkpoint, bounded epochs,
    // retry with backoff instead of dying.
    models::TrainConfig cfg = base_;
    cfg.eval_every = 0;  // sessions are too short for early stopping
    cfg.history = nullptr;
    cfg.checkpoint_path = config_.candidate_checkpoint;
    cfg.checkpoint_every = 0;  // only the end-of-session state matters
    cfg.resume_from.clear();
    cfg.epochs = config_.epochs_per_session;
    if (std::filesystem::exists(config_.serving_checkpoint)) {
      auto epoch = nn::PeekTrainStateEpoch(config_.serving_checkpoint);
      if (!epoch.ok()) {
        // A serving checkpoint that does not parse is an operator problem,
        // not something to silently train over from scratch.
        return epoch.status();
      }
      cfg.resume_from = config_.serving_checkpoint;
      // FitLoop counts absolute epochs: resume starts at epoch+1 and runs
      // while < cfg.epochs, so "k more" means last epoch + 1 + k.
      cfg.epochs = epoch.value() + 1 + config_.epochs_per_session;
    }
    Status train_status = Status::Ok();
    for (int64_t attempt = 0; attempt <= config_.max_session_retries; ++attempt) {
      if (attempt > 0) {
        ++stats_.retries;
        Counter("online.train.retries").Add(1);
        if (config_.retry_backoff_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(config_.retry_backoff_us));
        }
      }
      train_status = train_(ds, cfg);
      if (train_status.ok()) break;
      ++stats_.train_failures;
      Counter("online.train.failures").Add(1);
    }
    if (!train_status.ok()) return train_status;
    ++stats_.trained;

    // Injected poisoned update: the trained weights are overwritten with
    // finite garbage after training but before the gate — the gate must
    // catch what the is-finite scan cannot.
    if (config_.fault_injector != nullptr &&
        config_.fault_injector->ShouldPoisonUpdate(session)) {
      config_.fault_injector->PoisonParameters(model_.Parameters());
      ++stats_.poisoned;
    }

    // 3. Drift gate on the trailing holdout.
    eval::EvalConfig eval_cfg;
    eval_cfg.max_len = base_.max_len;
    const eval::Metrics m = eval::Evaluate(ranker_, ds, eval::Split::kValidation, eval_cfg);
    const Status gate = drift_.Check(m);
    WriteTelemetry(session, m, gate.ok());
    if (!gate.ok()) {
      Quarantine(session);
      if (config_.fault_injector != nullptr &&
          config_.fault_injector->ShouldPoisonUpdate(session)) {
        ++stats_.poisoned_blocked;
      }
      // Serving keeps the old model, and the next session's warm start
      // (resume_from the serving checkpoint) overwrites the replica's
      // weights, so a quarantined update never seeds session n+1. Absent a
      // serving checkpoint (gated bootstrap) the gate keeps quarantining
      // until training recovers.
      return Status::Ok();
    }

    // Injected crash between train and publish: the candidate checkpoint is
    // orphaned on disk, serving state untouched. The caller restarts the
    // loop (a fresh RunSession) to recover.
    if (config_.fault_injector != nullptr &&
        config_.fault_injector->ShouldCrashBeforePublish(session)) {
      ++stats_.crashes;
      Counter("online.crashes").Add(1);
      return Status::Internal("injected crash between train and publish (session " +
                              std::to_string(session) + ")");
    }

    // 4. Publish through the probation gate, then commit the checkpoint.
    if (publisher_ != nullptr) {
      const serve::PublishOutcome out = publisher_->PublishAndProbe(model_);
      if (out.rolled_back) {
        ++stats_.rollbacks;
        Counter("online.rollbacks").Add(1);
        Quarantine(session);
        return Status::Ok();
      }
      if (!out.published) {
        ++stats_.publish_rejected;
        Counter("online.publish_rejected").Add(1);
        Quarantine(session);
        return Status::Ok();
      }
    }
    if (Status s = CommitServingCheckpoint(); !s.ok()) return s;
    drift_.SetBaseline(m);
    ++stats_.published;
    Counter("online.published").Add(1);
    return Status::Ok();
  }

 private:
  static obs::Counter& Counter(const std::string& name) {
    return obs::Registry::Global().GetCounter(name);
  }

  /// Atomically replaces the serving checkpoint with the candidate (copy +
  /// rename through nn::internal::WriteFileAtomic, so a crash mid-commit
  /// leaves the old serving checkpoint intact).
  Status CommitServingCheckpoint() {
    std::string image;
    if (Status s = nn::internal::ReadFileImage(config_.candidate_checkpoint, &image);
        !s.ok()) {
      return s;
    }
    return nn::internal::WriteFileAtomic(config_.serving_checkpoint, image);
  }

  /// Moves the rejected candidate checkpoint aside so it can be inspected
  /// but can never be served. Best-effort: a quarantine failure is not worth
  /// failing the session over (the candidate is scratch either way).
  void Quarantine(int64_t session) {
    ++stats_.quarantined;
    Counter("online.quarantined").Add(1);
    if (config_.quarantine_dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(config_.quarantine_dir, ec);
    if (ec) return;
    const std::string dst = config_.quarantine_dir + "/candidate-session-" +
                            std::to_string(session) + ".ckpt";
    std::filesystem::rename(config_.candidate_checkpoint, dst, ec);
  }

  void WriteTelemetry(int64_t session, const eval::Metrics& m, bool gate_ok) {
    if (config_.telemetry_path.empty()) return;
    if (!telemetry_.is_open()) {
      if (!telemetry_.Open(config_.telemetry_path, /*append=*/true).ok()) return;
    }
    std::map<std::string, double> row;
    row["drift_hr10"] = m.hr10;
    row["drift_ndcg10"] = m.ndcg10;
    row["baseline_hr10"] = drift_.has_baseline() ? drift_.baseline().hr10 : 0.0;
    row["baseline_ndcg10"] = drift_.has_baseline() ? drift_.baseline().ndcg10 : 0.0;
    row["gate_ok"] = gate_ok ? 1.0 : 0.0;
    row["events"] = static_cast<double>(stats_.events_consumed);
    (void)telemetry_.WriteRow(session, row);
  }

  nn::Module& model_;
  eval::Ranker& ranker_;
  TrainFn train_;
  models::TrainConfig base_;
  OnlineTrainerConfig config_;
  DriftMonitor drift_;
  serve::PublishController* publisher_;
  OnlineLoopStats stats_;
  obs::TelemetryCsv telemetry_;
};

}  // namespace runtime
}  // namespace msgcl

#endif  // MSGCL_RUNTIME_ONLINE_H_
