// Umbrella header for the fault-tolerant training runtime.
#ifndef MSGCL_RUNTIME_RUNTIME_H_
#define MSGCL_RUNTIME_RUNTIME_H_

#include "runtime/fault_injector.h"  // IWYU pragma: export
#include "runtime/recovery.h"        // IWYU pragma: export

#endif  // MSGCL_RUNTIME_RUNTIME_H_
