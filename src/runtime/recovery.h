// Numeric-health recovery for the training loop: detect -> rollback ->
// backoff -> abort (see DESIGN.md "Fault-tolerant training runtime").
//
// After every optimisation step FitLoop checks the reported loss and the
// model parameters with nn::AllFinite. On the first non-finite value the
// configured RecoveryPolicy decides what happens:
//   kAbort         fail fast with Status::Internal (old behaviour, made loud)
//   kSkipBatch     restore the last healthy snapshot and move on
//   kRollbackRetry restore the snapshot, halve every optimizer's learning
//                  rate (exponential backoff: lr * decay^attempt), and retry
//                  the same batch up to max_retries times before aborting
//
// The HealthGuard owns the "last healthy snapshot": parameter data plus each
// optimizer's moments/step/lr, refreshed every snapshot_every healthy steps.
// Restoring both halves is what makes rollback sound — a NaN gradient that
// reached Adam has already poisoned the moment buffers, so restoring the
// weights alone would re-diverge on the very next step.
#ifndef MSGCL_RUNTIME_RECOVERY_H_
#define MSGCL_RUNTIME_RECOVERY_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/numeric.h"
#include "nn/optim.h"
#include "obs/registry.h"
#include "tensor/status.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace runtime {

/// What to do when a step produces a non-finite loss or parameter.
enum class RecoveryPolicy {
  kAbort,          // return Status::Internal immediately
  kSkipBatch,      // roll back to the last healthy snapshot, skip the batch
  kRollbackRetry,  // roll back, decay lr, retry the batch with backoff
};

/// Numeric-health guard configuration (TrainConfig::recovery).
struct RecoveryConfig {
  RecoveryPolicy policy = RecoveryPolicy::kRollbackRetry;
  int64_t max_retries = 3;      // rollback-retry attempts per batch
  float lr_decay = 0.5f;        // backoff factor per retry attempt
  int64_t snapshot_every = 1;   // healthy steps between snapshot refreshes
  bool check_gradients = false; // additionally scan gradients post-step

  Status Validate() const {
    if (max_retries < 0) return Status::InvalidArgument("max_retries must be >= 0");
    if (lr_decay <= 0.0f || lr_decay >= 1.0f) {
      return Status::InvalidArgument("lr_decay must be in (0, 1)");
    }
    if (snapshot_every <= 0) {
      return Status::InvalidArgument("snapshot_every must be positive");
    }
    return Status::Ok();
  }
};

/// One recorded recovery action, surfaced through FitHistory so runs can
/// report how they survived.
struct RecoveryEvent {
  int64_t epoch = 0;
  int64_t global_step = 0;
  int64_t retries = 0;     // attempts consumed (0 for a plain skip)
  bool skipped = false;    // true when the batch was abandoned
  std::string detail;      // what tripped the guard
};

/// Rolling snapshot + detect/rollback engine used by FitLoop. The guard is
/// cheap when training is healthy: one AllFinite scan per step plus a
/// parameter copy every snapshot_every steps.
class HealthGuard {
 public:
  HealthGuard(const RecoveryConfig& config, std::vector<Tensor> params,
              std::vector<nn::Optimizer*> optimizers)
      : config_(config), params_(std::move(params)), optimizers_(std::move(optimizers)) {}

  /// Captures the current parameters + optimizer states as the known-good
  /// point. Call once before training and after healthy steps.
  void Snapshot() {
    param_data_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) param_data_[i] = params_[i].ToVector();
    opt_states_.clear();
    opt_states_.reserve(optimizers_.size());
    for (const nn::Optimizer* opt : optimizers_) opt_states_.push_back(opt->GetState());
    has_snapshot_ = true;
  }

  /// Refreshes the snapshot if `healthy_steps` says it is due.
  void MaybeSnapshot(int64_t healthy_steps) {
    if (healthy_steps % config_.snapshot_every == 0) Snapshot();
  }

  /// True when loss and parameters (and optionally gradients) are finite.
  bool Healthy(float loss) const {
    if (!std::isfinite(loss)) return false;
    if (!nn::AllFinite(params_)) return false;
    if (config_.check_gradients && !nn::AllGradsFinite(params_)) return false;
    return true;
  }

  /// Describes which check failed, for RecoveryEvent::detail.
  std::string Diagnose(float loss) const {
    if (!std::isfinite(loss)) return "non-finite loss";
    if (!nn::AllFinite(params_)) return "non-finite parameter";
    if (config_.check_gradients && !nn::AllGradsFinite(params_)) {
      return "non-finite gradient";
    }
    return "healthy";
  }

  /// Restores parameters and optimizer states from the last snapshot.
  /// Returns false when no snapshot exists (nothing to roll back to).
  bool Rollback() {
    if (!has_snapshot_) return false;
    for (size_t i = 0; i < params_.size(); ++i) {
      params_[i].data().assign(param_data_[i].begin(), param_data_[i].end());
    }
    for (size_t o = 0; o < optimizers_.size(); ++o) {
      optimizers_[o]->SetState(opt_states_[o]);
    }
    // Cold path: counted unconditionally (not macro-gated) so recovery
    // drills are observable even in MSGCL_OBS=OFF builds.
    obs::Registry::Global().GetCounter("runtime.recovery.rollbacks").Add(1);
    return true;
  }

  /// Applies the exponential lr backoff for retry attempt `attempt` (1-based)
  /// on top of the snapshotted rates: lr = snapshot_lr * decay^attempt.
  void ApplyBackoff(int64_t attempt) {
    const float scale = std::pow(config_.lr_decay, static_cast<float>(attempt));
    for (size_t o = 0; o < optimizers_.size(); ++o) {
      optimizers_[o]->set_lr(opt_states_[o].lr * scale);
    }
  }

  /// Restores every optimizer's snapshotted learning rate (after a
  /// successful retry, so one bad batch does not permanently slow the run).
  void RestoreLr() {
    for (size_t o = 0; o < optimizers_.size(); ++o) {
      optimizers_[o]->set_lr(opt_states_[o].lr);
    }
  }

  const RecoveryConfig& config() const { return config_; }
  bool has_snapshot() const { return has_snapshot_; }

 private:
  RecoveryConfig config_;
  std::vector<Tensor> params_;
  std::vector<nn::Optimizer*> optimizers_;
  std::vector<std::vector<float>> param_data_;
  std::vector<nn::OptimizerState> opt_states_;
  bool has_snapshot_ = false;
};

}  // namespace runtime
}  // namespace msgcl

#endif  // MSGCL_RUNTIME_RECOVERY_H_
