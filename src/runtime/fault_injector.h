// Deterministic fault injection for exercising the fault-tolerant training
// runtime and the resilient serving layer. The training-side injector can
// poison gradients or the reported loss at chosen global steps (driving the
// numeric-health recovery paths in FitLoop), corrupt checkpoint files by
// truncation or bit-flips (driving the CRC / staged-load rejection paths),
// and emit malformed CSV rows (driving the loader's strict parsing). The
// serve-side injector (ServeFaultInjector) stalls, throws from, or
// NaN-poisons individual scoring batches, driving the MicroBatcher's circuit
// breaker and degraded-mode fallback (DESIGN.md §10). The online-loop
// injector (OnlineFaultInjector) tears or corrupts WAL appends, crashes the
// driver between train and publish, and poisons trained updates, driving the
// event-log recovery and drift-gate paths (DESIGN.md §15). Everything is
// seeded, so failures reproduce bit-exactly.
#ifndef MSGCL_RUNTIME_FAULT_INJECTOR_H_
#define MSGCL_RUNTIME_FAULT_INJECTOR_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iterator>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "tensor/rng.h"
#include "tensor/status.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace runtime {

/// What a gradient/loss fault writes into the target.
enum class FaultKind {
  kNaN,       // quiet NaN
  kInf,       // +infinity
  kHugeValue, // finite but catastrophic (1e30): escapes AllFinite checks on
              // its own but overflows to Inf within one or two Adam steps
};

/// Plan for in-training faults, keyed by global step (0-based, counted across
/// epochs). Empty sets disable that fault class.
struct FaultPlan {
  std::set<int64_t> corrupt_grad_steps;  // poison gradients before the update
  std::set<int64_t> corrupt_loss_steps;  // poison the reported loss value
  FaultKind kind = FaultKind::kNaN;
  // Fraction of each parameter's gradient elements to poison (at least one).
  double grad_fraction = 0.01;
  uint64_t seed = 0xFA017;
};

/// Deterministic, seeded fault source. One injector instance drives one
/// training run; Reset() rewinds it for an identical replay.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

  const FaultPlan& plan() const { return plan_; }

  /// Rewinds the injector's RNG so a rerun injects identical faults.
  void Reset() { rng_ = Rng(plan_.seed); }

  bool ShouldCorruptGradients(int64_t global_step) const {
    return plan_.corrupt_grad_steps.count(global_step) > 0;
  }
  bool ShouldCorruptLoss(int64_t global_step) const {
    return plan_.corrupt_loss_steps.count(global_step) > 0;
  }

  /// Poisons a deterministic subset of each parameter's gradient buffer.
  /// Call between Backward() and Optimizer::Step() so the fault flows through
  /// the optimizer exactly like a real numeric blow-up would.
  void CorruptGradients(const std::vector<Tensor>& params) {
    for (const auto& p : params) {
      Tensor t = p;  // shared handle; mutable_grad needs a non-const Tensor
      auto& g = t.mutable_grad();
      if (g.empty()) continue;
      const uint64_t n = g.size();
      uint64_t hits = static_cast<uint64_t>(plan_.grad_fraction * static_cast<double>(n));
      if (hits == 0) hits = 1;
      for (uint64_t h = 0; h < hits; ++h) g[rng_.UniformInt(n)] = FaultValue();
    }
    CountFault();
  }

  /// Returns the poisoned replacement for a loss value.
  float CorruptLoss() {
    CountFault();
    return FaultValue();
  }

  /// Number of faults injected so far (for test assertions).
  int64_t injected_faults() const { return injected_faults_; }

  // ---- Checkpoint-file corruption ----------------------------------------

  /// Truncates `path` to `keep_bytes` (clamped to the current size).
  static Status TruncateFile(const std::string& path, uint64_t keep_bytes) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    if (keep_bytes < data.size()) data.resize(keep_bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::NotFound("cannot reopen " + path);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::Internal("truncate rewrite failed for " + path);
    return Status::Ok();
  }

  /// Flips `num_flips` deterministic single bits in `path`, avoiding the
  /// first `skip_prefix` bytes (e.g. to keep the magic intact and test
  /// deeper validation layers).
  Status BitFlipFile(const std::string& path, int64_t num_flips, uint64_t skip_prefix = 0) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    if (data.size() <= skip_prefix) {
      return Status::InvalidArgument("file shorter than skip_prefix");
    }
    const uint64_t span = data.size() - skip_prefix;
    for (int64_t i = 0; i < num_flips; ++i) {
      const uint64_t byte = skip_prefix + rng_.UniformInt(span);
      const int bit = static_cast<int>(rng_.UniformInt(8));
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::NotFound("cannot reopen " + path);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::Internal("bit-flip rewrite failed for " + path);
    CountFault();
    return Status::Ok();
  }

  // ---- Malformed CSV rows -------------------------------------------------

  /// Returns a deterministic rotation of malformed CSV rows that a strict
  /// loader must reject: short rows, trailing-garbage numerics, and
  /// trailing-delimiter (empty final field) rows.
  std::vector<std::string> MalformedCsvRows() const {
    return {
        "u1,i1",              // too few fields
        "u1,i1,4.5abc,100",   // rating with trailing garbage
        "u1,i1,4.5,100xyz",   // timestamp with trailing garbage
        "u1,i1,,100",         // empty rating field
        "u1,i1,4.5,",         // trailing delimiter: empty timestamp field
        "u1,i1,nanX,100",     // not a number at all
    };
  }

 private:
  // Cold path: counted unconditionally (not macro-gated) so drills remain
  // observable in MSGCL_OBS=OFF builds.
  void CountFault() {
    ++injected_faults_;
    obs::Registry::Global().GetCounter("runtime.faults.injected").Add(1);
  }

  float FaultValue() const {
    switch (plan_.kind) {
      case FaultKind::kNaN: return std::numeric_limits<float>::quiet_NaN();
      case FaultKind::kInf: return std::numeric_limits<float>::infinity();
      case FaultKind::kHugeValue: return 1e30f;
    }
    return std::numeric_limits<float>::quiet_NaN();
  }

  FaultPlan plan_;
  Rng rng_;
  int64_t injected_faults_ = 0;
};

// ---- Serve-path fault injection (DESIGN.md §10) ----------------------------

/// What an injected serving fault does to one scoring batch.
enum class ServeFaultKind {
  kNone,        // batch proceeds untouched
  kSlowScore,   // stall the scoring call (drives the batch timeout guard)
  kScoreThrow,  // throw from inside the scoring call (drives the catch path)
  kNaNScores,   // poison returned top-k scores (drives the numeric guard)
};

inline const char* ServeFaultKindName(ServeFaultKind kind) {
  switch (kind) {
    case ServeFaultKind::kNone: return "none";
    case ServeFaultKind::kSlowScore: return "slow_score";
    case ServeFaultKind::kScoreThrow: return "score_throw";
    case ServeFaultKind::kNaNScores: return "nan_scores";
  }
  return "unknown";
}

/// Plan for serving faults, keyed by scored-batch index (0-based, counting
/// only batches that reach the scoring call — fallback-served batches are
/// never faulted). `fault_batches` pins faults to exact batches; when it is
/// empty each batch is faulted independently with probability `fault_rate`.
struct ServeFaultPlan {
  std::set<int64_t> fault_batches;
  double fault_rate = 0.0;
  /// Kinds to rotate through; a firing batch draws one uniformly (seeded).
  std::vector<ServeFaultKind> kinds = {ServeFaultKind::kScoreThrow};
  int64_t slow_score_us = 50000;  // wall-clock stall for kSlowScore
  double nan_fraction = 0.25;     // fraction of top-k slots poisoned (min 1)
  /// Mid-swap crash plan, keyed by swap-attempt index (0-based): a firing
  /// attempt makes SwappableRanker fail after the standby weights were
  /// written but before validation, as if the process loading the snapshot
  /// died (serve/model_swap.h). `swap_crash_attempts` pins crashes to exact
  /// attempts; when it is empty each attempt crashes independently with
  /// probability `swap_crash_rate`. Drawn from a separate RNG stream so the
  /// batch-fault sequence above is unchanged by swap activity.
  std::set<int64_t> swap_crash_attempts;
  double swap_crash_rate = 0.0;
  uint64_t seed = 0x5EF7;
};

/// Deterministic, seeded fault source for the serving path. Thread-safe: the
/// MicroBatcher serializes scoring, but chaos drills may share one injector
/// across batchers, so every entry point locks. Reset() rewinds for an
/// identical replay.
class ServeFaultInjector {
 public:
  explicit ServeFaultInjector(ServeFaultPlan plan)
      : plan_(std::move(plan)),
        rng_(plan_.seed),
        swap_rng_(plan_.seed ^ kSwapStreamSalt) {}

  const ServeFaultPlan& plan() const { return plan_; }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    rng_ = Rng(plan_.seed);
    swap_rng_ = Rng(plan_.seed ^ kSwapStreamSalt);
    batch_index_ = 0;
    swap_index_ = 0;
    injected_faults_ = 0;
  }

  /// Draws the fault (if any) for the next scored batch. Call exactly once
  /// per batch that reaches the scoring call.
  ServeFaultKind NextBatchFault() {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t n = batch_index_++;
    bool fire;
    if (!plan_.fault_batches.empty()) {
      fire = plan_.fault_batches.count(n) > 0;
    } else {
      // Always consume one draw so the fault sequence is a pure function of
      // the batch index, independent of the rate.
      fire = rng_.Uniform() < plan_.fault_rate;
    }
    if (!fire || plan_.kinds.empty()) return ServeFaultKind::kNone;
    const ServeFaultKind kind =
        plan_.kinds[rng_.UniformInt(plan_.kinds.size())];
    if (kind != ServeFaultKind::kNone) CountFault();
    return kind;
  }

  /// Draws whether the next hot-swap attempt crashes mid-swap. Call exactly
  /// once per SwappableRanker swap attempt; deterministic per attempt index.
  bool NextSwapCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t n = swap_index_++;
    bool fire;
    if (!plan_.swap_crash_attempts.empty()) {
      fire = plan_.swap_crash_attempts.count(n) > 0;
    } else {
      // Always consume one draw: the crash sequence is a pure function of
      // the attempt index, independent of the rate.
      fire = swap_rng_.Uniform() < plan_.swap_crash_rate;
    }
    if (fire) CountFault();
    return fire;
  }

  /// Stalls the scoring call. Defaults to a wall-clock sleep of
  /// `slow_score_us`; tests override with set_slow_fn (e.g. to advance a
  /// FakeClock deterministically instead of sleeping).
  void InjectSlow() {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn = slow_fn_;
    }
    if (fn) {
      fn();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(plan_.slow_score_us));
    }
  }

  void set_slow_fn(std::function<void()> fn) {
    std::lock_guard<std::mutex> lock(mu_);
    slow_fn_ = std::move(fn);
  }

  /// Throws the injected scoring exception (called from inside the batcher's
  /// guarded scoring region, so the catch path is exercised end to end).
  [[noreturn]] void ThrowScoreFault() {
    throw std::runtime_error("injected scoring fault (kScoreThrow)");
  }

  /// Poisons a seeded subset (>= 1) of the given score slots with quiet
  /// NaNs. `slots` are non-owning pointers into the batch's top-k lists.
  void PoisonScores(const std::vector<float*>& slots) {
    if (slots.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t hits = static_cast<uint64_t>(plan_.nan_fraction *
                                          static_cast<double>(slots.size()));
    if (hits == 0) hits = 1;
    for (uint64_t h = 0; h < hits; ++h) {
      *slots[rng_.UniformInt(slots.size())] = std::numeric_limits<float>::quiet_NaN();
    }
  }

  /// Number of faulted batches so far (for test assertions).
  int64_t injected_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_faults_;
  }

 private:
  void CountFault() {
    ++injected_faults_;
    obs::Registry::Global().GetCounter("runtime.faults.injected").Add(1);
  }

  // Decorrelates the swap-crash stream from the batch-fault stream so the
  // same seed reproduces both independently.
  static constexpr uint64_t kSwapStreamSalt = 0x51AB'C0DE;

  ServeFaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  Rng swap_rng_;
  int64_t batch_index_ = 0;
  int64_t swap_index_ = 0;
  int64_t injected_faults_ = 0;
  std::function<void()> slow_fn_;
};

// ---- Online-loop fault injection (DESIGN.md §15) ---------------------------

/// What an injected online-loop fault does. Append faults are keyed by append
/// index (0-based, counted across the writer's lifetime); session faults by
/// session index (0-based, counted across the online trainer's lifetime).
enum class OnlineAppendFault {
  kNone,     // the append commits normally
  kTorn,     // the writer "crashes" mid-frame: a partial frame hits the disk
             // and the writer goes dead (the append is NOT committed)
  kCorrupt,  // the full frame is written with a poisoned payload byte, so its
             // CRC can never match (in-flight bit rot; NOT committed)
};

/// Plan for online-loop faults. Pinned index sets take precedence; when a set
/// is empty the corresponding fault fires independently per index with its
/// rate. Torn wins over corrupt when both fire on the same append.
struct OnlineFaultPlan {
  std::set<int64_t> torn_appends;
  std::set<int64_t> corrupt_appends;
  double torn_rate = 0.0;
  double corrupt_rate = 0.0;
  /// Sessions where the driver "crashes" after training (and writing the
  /// candidate checkpoint) but before publish — serving must stay untouched.
  std::set<int64_t> crash_before_publish_sessions;
  /// Sessions whose trained update is poisoned before the drift gate sees
  /// it. The poison is FINITE garbage (huge uniform noise), so it sails past
  /// any is-finite scan and must be caught by the quality gate itself.
  std::set<int64_t> poison_update_sessions;
  double poison_scale = 1e8;  // amplitude of the poisoned weights
  uint64_t seed = 0x0A11E;
};

/// Deterministic, seeded fault source for the online train->serve loop.
/// Thread-safe for symmetry with ServeFaultInjector (the loop itself is
/// single-threaded, but drills share injectors freely). Reset() rewinds for
/// an identical replay.
class OnlineFaultInjector {
 public:
  explicit OnlineFaultInjector(OnlineFaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  const OnlineFaultPlan& plan() const { return plan_; }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    rng_ = Rng(plan_.seed);
    append_index_ = 0;
    injected_faults_ = 0;
  }

  /// Draws the fault (if any) for the next WAL append. Call exactly once per
  /// Append; deterministic per append index. Torn takes precedence.
  OnlineAppendFault NextAppendFault() {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t n = append_index_++;
    // Always consume both draws so the fault sequence is a pure function of
    // the append index, independent of either rate.
    const bool torn = plan_.torn_appends.empty() ? rng_.Uniform() < plan_.torn_rate
                                                 : plan_.torn_appends.count(n) > 0;
    const bool corrupt = plan_.corrupt_appends.empty()
                             ? rng_.Uniform() < plan_.corrupt_rate
                             : plan_.corrupt_appends.count(n) > 0;
    if (torn) {
      CountFault();
      return OnlineAppendFault::kTorn;
    }
    if (corrupt) {
      CountFault();
      return OnlineAppendFault::kCorrupt;
    }
    return OnlineAppendFault::kNone;
  }

  /// How many bytes of a `frame_bytes`-long frame a torn append leaves on
  /// disk: seeded uniform in [1, frame_bytes - 1].
  int64_t TornPrefixBytes(int64_t frame_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (frame_bytes <= 1) return 0;
    return 1 + static_cast<int64_t>(rng_.UniformInt(static_cast<uint64_t>(frame_bytes - 1)));
  }

  /// Which payload byte a corrupt append poisons (XOR 0xFF).
  int64_t CorruptByteOffset(int64_t payload_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (payload_bytes <= 0) return 0;
    return static_cast<int64_t>(rng_.UniformInt(static_cast<uint64_t>(payload_bytes)));
  }

  /// True when the driver should die between training and publish.
  bool ShouldCrashBeforePublish(int64_t session) {
    if (plan_.crash_before_publish_sessions.count(session) == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    CountFault();
    return true;
  }

  bool ShouldPoisonUpdate(int64_t session) const {
    return plan_.poison_update_sessions.count(session) > 0;
  }

  /// Overwrites every parameter with seeded uniform noise in
  /// [-poison_scale, poison_scale]: finite, so the publish path's is-finite
  /// scan passes and only the drift gate can stop it. (At the default scale
  /// the downstream dot products overflow float32, so the candidate's
  /// rankings are garbage — exactly the failure a quality gate must catch.)
  void PoisonParameters(const std::vector<Tensor>& params) {
    std::lock_guard<std::mutex> lock(mu_);
    const float s = static_cast<float>(plan_.poison_scale);
    for (const auto& p : params) {
      Tensor t = p;  // shared handle
      for (float& v : t.data()) {
        v = (2.0f * static_cast<float>(rng_.Uniform()) - 1.0f) * s;
      }
    }
    CountFault();
  }

  /// Number of faults injected so far (for test assertions).
  int64_t injected_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_faults_;
  }

 private:
  void CountFault() {
    ++injected_faults_;
    obs::Registry::Global().GetCounter("runtime.faults.injected").Add(1);
  }

  OnlineFaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  int64_t append_index_ = 0;
  int64_t injected_faults_ = 0;
};

}  // namespace runtime
}  // namespace msgcl

#endif  // MSGCL_RUNTIME_FAULT_INJECTOR_H_
