// Minimal streaming JSON writer shared by every JSON emitter in the repo
// (metrics snapshots, chrome traces, BENCH_*.json reports).
//
// Two bugs this writer exists to prevent, in one place:
//  - strings went out unescaped (a quote or backslash in a kernel or op name
//    produced invalid JSON);
//  - floats were formatted with printf("%f"), which honors the process
//    locale — under e.g. de_DE.UTF-8 that prints "0,5" and breaks every
//    downstream parser. Doubles here go through std::to_chars, which is
//    locale-independent by specification and round-trips exactly at 17
//    significant digits.
#ifndef MSGCL_OBS_JSON_H_
#define MSGCL_OBS_JSON_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace msgcl {
namespace obs {

/// Locale-independent shortest-round-trip formatting, also used for CSV
/// cells. Non-finite values format as "nan"/"inf"/"-inf" (callers emitting
/// JSON must map those to null; JsonWriter::Double does).
inline std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

/// Escapes `s` for use inside a JSON string literal (without the quotes).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming writer with automatic comma placement. Usage:
///   JsonWriter w;
///   w.BeginObject(); w.Key("name"); w.String("x"); w.EndObject();
///   std::string s = w.Take();
/// Objects/arrays nest arbitrarily; values at array level are written by
/// calling String/Int/Double/Bool/Null without a preceding Key.
class JsonWriter {
 public:
  JsonWriter() { stack_.push_back(true); }

  void BeginObject() { Prefix(); out_ += '{'; stack_.push_back(true); }
  void EndObject() { stack_.pop_back(); out_ += '}'; }
  void BeginArray() { Prefix(); out_ += '['; stack_.push_back(true); }
  void EndArray() { stack_.pop_back(); out_ += ']'; }

  void Key(const std::string& k) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(k);
    out_ += "\":";
    pending_value_ = true;
  }

  void String(const std::string& v) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(v);
    out_ += '"';
  }
  void Int(int64_t v) { Prefix(); out_ += std::to_string(v); }
  void UInt(uint64_t v) { Prefix(); out_ += std::to_string(v); }
  void Bool(bool v) { Prefix(); out_ += v ? "true" : "false"; }
  void Null() { Prefix(); out_ += "null"; }

  /// Finite doubles via to_chars; NaN/Inf have no JSON spelling → null.
  void Double(double v) {
    Prefix();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      out_ += FormatDouble(v);
    }
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  // Emits the separating comma unless this is the first element of the
  // current container or the value right after a Key.
  void Prefix() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.back()) {
      out_ += ',';
    } else {
      stack_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> stack_;  // per level: "next element is the first"
  bool pending_value_ = false;
};

}  // namespace obs
}  // namespace msgcl

#endif  // MSGCL_OBS_JSON_H_
