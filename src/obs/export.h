// Export layer: registry snapshots to JSON, trace buffers to
// chrome://tracing event files, and a human-readable profile table.
// Implementations live in obs.cc.
#ifndef MSGCL_OBS_EXPORT_H_
#define MSGCL_OBS_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "tensor/status.h"

namespace msgcl {
namespace obs {

/// Serializes a snapshot as a pretty-printed JSON document:
/// {"counters": {...}, "gauges": {...}, "ops": [...], "histograms": [...]}.
/// Byte-stable for equal snapshot contents (name-sorted, to_chars floats).
std::string SnapshotToJson(const Snapshot& snapshot);

/// SnapshotToJson + atomic write (tmp + rename) to `path`.
Status WriteMetricsJson(const Snapshot& snapshot, const std::string& path);

/// Serializes trace events in the chrome://tracing JSON array format
/// ({"traceEvents": [{"name", "ph": "X", "ts", "dur", "pid", "tid"}, ...]},
/// timestamps in microseconds as the format requires).
std::string TraceToJson(const std::vector<TraceEvent>& events);

/// TraceToJson + atomic write to `path`.
Status WriteChromeTrace(const std::vector<TraceEvent>& events, const std::string& path);

/// Prints an aligned per-op profile table (calls, total/self ms, MB) plus
/// non-zero counters to `out`, ops sorted by descending self time.
void PrintProfile(const Snapshot& snapshot, std::FILE* out);

}  // namespace obs
}  // namespace msgcl

#endif  // MSGCL_OBS_EXPORT_H_
