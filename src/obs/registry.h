// Metric registry for the observability layer (DESIGN.md "Observability").
//
// Named counters, gauges, histograms, and per-op profiler stats live in a
// Registry. Metric objects are allocated once and never move or disappear:
// instrumentation sites cache a reference (the MSGCL_OBS_* macros do this in
// a function-local static), so the hot path is a couple of relaxed atomic
// adds — no lock, no lookup. ResetValues() zeroes every metric in place
// without invalidating cached references.
//
// Determinism contract: counter, gauge, histogram, and call-count values are
// pure functions of the executed work, never of the thread count, because
// every instrumentation point sits outside the parallel::For sharding (ops
// are instrumented at entry, not per shard). Snapshots iterate metrics in
// name order, so exports are byte-stable given equal values. Only the
// nanosecond timing fields vary run to run.
#ifndef MSGCL_OBS_REGISTRY_H_
#define MSGCL_OBS_REGISTRY_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace msgcl {
namespace obs {

// Compile-time gate for the instrumentation macros (profiler.h). The CMake
// option MSGCL_OBS defines this to 0 when OFF; default is instrumented.
#ifndef MSGCL_OBS_ENABLED
#define MSGCL_OBS_ENABLED 1
#endif

/// True when the per-op instrumentation macros are compiled in.
constexpr bool kEnabled = MSGCL_OBS_ENABLED != 0;

/// Monotonic integer metric. Thread-safe; integer addition commutes, so the
/// value is independent of which thread added what.
class Counter {
 public:
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins scalar metric.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// plus an implicit overflow bucket. Percentile(p) reports the upper bound
/// of the bucket holding the ceil(p/100 * count)-th smallest sample (the
/// recorded maximum for the overflow bucket), which is exact at bucket
/// resolution and trivially hand-computable in tests.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    counts_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    Reset();
  }

  /// Default bucket layout: powers of two 1, 2, 4, ... 2^20.
  static std::vector<double> DefaultBounds() {
    std::vector<double> b;
    for (int i = 0; i <= 20; ++i) b.push_back(static_cast<double>(int64_t{1} << i));
    return b;
  }

  void Record(double v) {
    const size_t bucket =
        std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(sum_, v);
    AtomicMax(max_, v);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  int64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const {
    const int64_t n = count();
    if (n <= 0) return 0.0;
    int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(n));
    if (rank * 100 < static_cast<int64_t>(p * static_cast<double>(n))) ++rank;
    rank = std::max<int64_t>(rank, 1);
    int64_t cum = 0;
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      cum += bucket_count(i);
      if (cum >= rank) return i < bounds_.size() ? bounds_[i] : max();
    }
    return max();
  }

  void Reset() {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  static void AtomicAdd(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (cur < v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1 cells
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Per-op profile accumulated by ScopedTimer: call count, wall nanoseconds
/// (total and self = total minus time spent in nested instrumented ops), and
/// approximate bytes touched.
struct OpStats {
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> total_ns{0};
  std::atomic<int64_t> self_ns{0};
  std::atomic<int64_t> bytes{0};

  void Reset() {
    calls.store(0, std::memory_order_relaxed);
    total_ns.store(0, std::memory_order_relaxed);
    self_ns.store(0, std::memory_order_relaxed);
    bytes.store(0, std::memory_order_relaxed);
  }
};

/// One completed profiler span, recorded only while tracing is enabled.
/// Exported in chrome://tracing "X" (complete-event) form.
struct TraceEvent {
  std::string name;
  int64_t ts_ns = 0;   // start, relative to the trace epoch
  int64_t dur_ns = 0;  // wall duration
  int tid = 0;         // parallel::ThreadIndex() of the recording thread
};

/// Point-in-time copy of every metric, in name order.
struct Snapshot {
  struct Op {
    std::string name;
    int64_t calls = 0, total_ns = 0, self_ns = 0, bytes = 0;
  };
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<int64_t> bucket_counts;  // bounds.size() + 1 (overflow last)
    int64_t count = 0;
    double sum = 0.0, max = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Op> ops;
  std::vector<Hist> histograms;
};

/// Named metric store. Get* return a stable reference, creating the metric
/// on first use. Global() is the process-wide instance used by the
/// instrumentation macros; tests build private instances for golden exports.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }

  /// `bounds` applies only on first creation; empty means DefaultBounds().
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds = {}) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) {
      slot = std::make_unique<Histogram>(bounds.empty() ? Histogram::DefaultBounds()
                                                        : std::move(bounds));
    }
    return *slot;
  }

  OpStats& GetOp(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = ops_[name];
    if (!slot) slot = std::make_unique<OpStats>();
    return *slot;
  }

  /// Copies every metric in name order. Ops with zero calls are skipped so
  /// snapshots only list work that actually ran.
  Snapshot TakeSnapshot() const;

  /// Zeroes every metric in place; cached references stay valid.
  void ResetValues();

  // ---- Tracing ------------------------------------------------------------
  // Off by default. While on, every ScopedTimer destruction appends one
  // TraceEvent (bounded: events beyond kMaxTraceEvents are dropped and
  // counted in the "obs.trace.dropped" counter).

  static constexpr int64_t kMaxTraceEvents = int64_t{1} << 20;

  void SetTraceEnabled(bool on);
  bool trace_enabled() const { return trace_enabled_.load(std::memory_order_relaxed); }
  int64_t trace_epoch_ns() const { return trace_epoch_ns_; }

  void AppendTraceEvent(TraceEvent e);

  /// Copy of the recorded events sorted by (ts, tid, name).
  std::vector<TraceEvent> TraceEvents() const;
  void ClearTrace();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<OpStats>> ops_;

  std::atomic<bool> trace_enabled_{false};
  int64_t trace_epoch_ns_ = 0;
  mutable std::mutex trace_mu_;
  std::vector<TraceEvent> trace_;
};

}  // namespace obs
}  // namespace msgcl

#endif  // MSGCL_OBS_REGISTRY_H_
