#include "obs/obs.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <tuple>

namespace msgcl {
namespace obs {

// ---- Registry ---------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, op] : ops_) {
    const int64_t calls = op->calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    Snapshot::Op o;
    o.name = name;
    o.calls = calls;
    o.total_ns = op->total_ns.load(std::memory_order_relaxed);
    o.self_ns = op->self_ns.load(std::memory_order_relaxed);
    o.bytes = op->bytes.load(std::memory_order_relaxed);
    snap.ops.push_back(std::move(o));
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::Hist out;
    out.name = name;
    out.bounds = h->bounds();
    out.bucket_counts.resize(out.bounds.size() + 1);
    for (size_t i = 0; i <= out.bounds.size(); ++i) out.bucket_counts[i] = h->bucket_count(i);
    out.count = h->count();
    out.sum = h->sum();
    out.max = h->max();
    out.p50 = h->Percentile(50);
    out.p95 = h->Percentile(95);
    out.p99 = h->Percentile(99);
    snap.histograms.push_back(std::move(out));
  }
  return snap;
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, op] : ops_) op->Reset();
}

void Registry::SetTraceEnabled(bool on) {
  if (on) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_epoch_ns_ = NowNs();
  }
  trace_enabled_.store(on, std::memory_order_relaxed);
}

void Registry::AppendTraceEvent(TraceEvent e) {
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (static_cast<int64_t>(trace_.size()) < kMaxTraceEvents) {
      trace_.push_back(std::move(e));
      return;
    }
  }
  GetCounter("obs.trace.dropped").Add(1);
}

std::vector<TraceEvent> Registry::TraceEvents() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    out = trace_;
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return std::tie(a.ts_ns, a.tid, a.name) < std::tie(b.ts_ns, b.tid, b.name);
  });
  return out;
}

void Registry::ClearTrace() {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_.clear();
}

// ---- Export -----------------------------------------------------------------

namespace {

// Writes `payload` to `path` via tmp + rename so readers never observe a
// partial file (same discipline as nn/serialize.h's WriteFileAtomic, local
// here to keep obs dependency-free below tensor).
Status WriteFileAtomicLocal(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + ": " + std::strerror(errno));
  }
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != payload.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " -> " + path);
  }
  return Status::Ok();
}

}  // namespace

std::string SnapshotToJson(const Snapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();

  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, v] : snapshot.counters) {
    w.Key(name);
    w.Int(v);
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : snapshot.gauges) {
    w.Key(name);
    w.Double(v);
  }
  w.EndObject();

  w.Key("ops");
  w.BeginArray();
  for (const auto& op : snapshot.ops) {
    w.BeginObject();
    w.Key("name");
    w.String(op.name);
    w.Key("calls");
    w.Int(op.calls);
    w.Key("total_ns");
    w.Int(op.total_ns);
    w.Key("self_ns");
    w.Int(op.self_ns);
    w.Key("bytes");
    w.Int(op.bytes);
    w.EndObject();
  }
  w.EndArray();

  w.Key("histograms");
  w.BeginArray();
  for (const auto& h : snapshot.histograms) {
    w.BeginObject();
    w.Key("name");
    w.String(h.name);
    w.Key("count");
    w.Int(h.count);
    w.Key("sum");
    w.Double(h.sum);
    w.Key("max");
    w.Double(h.max);
    w.Key("p50");
    w.Double(h.p50);
    w.Key("p95");
    w.Double(h.p95);
    w.Key("p99");
    w.Double(h.p99);
    w.Key("bounds");
    w.BeginArray();
    for (const double b : h.bounds) w.Double(b);
    w.EndArray();
    w.Key("bucket_counts");
    w.BeginArray();
    for (const int64_t c : h.bucket_counts) w.Int(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  std::string out = w.Take();
  out += '\n';
  return out;
}

Status WriteMetricsJson(const Snapshot& snapshot, const std::string& path) {
  return WriteFileAtomicLocal(path, SnapshotToJson(snapshot));
}

std::string TraceToJson(const std::vector<TraceEvent>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& e : events) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("ph");
    w.String("X");
    // chrome://tracing expects microseconds.
    w.Key("ts");
    w.Double(static_cast<double>(e.ts_ns) / 1000.0);
    w.Key("dur");
    w.Double(static_cast<double>(e.dur_ns) / 1000.0);
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(e.tid);
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  std::string out = w.Take();
  out += '\n';
  return out;
}

Status WriteChromeTrace(const std::vector<TraceEvent>& events, const std::string& path) {
  return WriteFileAtomicLocal(path, TraceToJson(events));
}

void PrintProfile(const Snapshot& snapshot, std::FILE* out) {
  std::vector<Snapshot::Op> ops = snapshot.ops;
  std::sort(ops.begin(), ops.end(), [](const Snapshot::Op& a, const Snapshot::Op& b) {
    return a.self_ns != b.self_ns ? a.self_ns > b.self_ns : a.name < b.name;
  });
  std::fprintf(out, "%-32s %10s %12s %12s %10s\n", "op", "calls", "total_ms",
               "self_ms", "MB");
  for (const auto& op : ops) {
    std::fprintf(out, "%-32s %10lld %12.3f %12.3f %10.2f\n", op.name.c_str(),
                 static_cast<long long>(op.calls),
                 static_cast<double>(op.total_ns) / 1e6,
                 static_cast<double>(op.self_ns) / 1e6,
                 static_cast<double>(op.bytes) / 1e6);
  }
  bool header = false;
  for (const auto& [name, v] : snapshot.counters) {
    if (v == 0) continue;
    if (!header) {
      std::fprintf(out, "\n%-48s %14s\n", "counter", "value");
      header = true;
    }
    std::fprintf(out, "%-48s %14lld\n", name.c_str(), static_cast<long long>(v));
  }
}

// ---- Telemetry --------------------------------------------------------------

namespace {

struct ScalarAccum {
  double sum = 0.0;
  int64_t count = 0;
};

std::mutex g_scalar_mu;
std::map<std::string, ScalarAccum>& ScalarStore() {
  static std::map<std::string, ScalarAccum>* store = new std::map<std::string, ScalarAccum>();
  return *store;
}

}  // namespace

void RecordStepScalar(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(g_scalar_mu);
  ScalarAccum& acc = ScalarStore()[name];
  acc.sum += value;
  acc.count += 1;
}

std::map<std::string, double> DrainStepScalarMeans() {
  std::lock_guard<std::mutex> lock(g_scalar_mu);
  std::map<std::string, double> out;
  for (const auto& [name, acc] : ScalarStore()) {
    if (acc.count > 0) out[name] = acc.sum / static_cast<double>(acc.count);
  }
  ScalarStore().clear();
  return out;
}

namespace {

// Splits a CSV header line (no quoting needed: column names never contain
// commas) into its column names.
std::vector<std::string> SplitHeader(const std::string& line) {
  std::vector<std::string> cols;
  std::string cur;
  for (const char c : line) {
    if (c == ',') {
      cols.push_back(cur);
      cur.clear();
    } else if (c != '\r' && c != '\n') {
      cur += c;
    }
  }
  if (!cur.empty()) cols.push_back(cur);
  return cols;
}

}  // namespace

Status TelemetryCsv::Open(const std::string& path, bool append) {
  Close();
  columns_.clear();
  if (append) {
    // Adopt the existing header so a resumed run appends aligned rows.
    std::FILE* existing = std::fopen(path.c_str(), "rb");
    if (existing != nullptr) {
      std::string header;
      int c;
      while ((c = std::fgetc(existing)) != EOF && c != '\n') {
        header += static_cast<char>(c);
      }
      std::fclose(existing);
      if (!header.empty()) columns_ = SplitHeader(header);
    }
  }
  file_ = std::fopen(path.c_str(), append && !columns_.empty() ? "ab" : "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open telemetry csv " + path + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status TelemetryCsv::WriteRow(int64_t epoch, const std::map<std::string, double>& values) {
  if (file_ == nullptr) return Status::Internal("telemetry csv not open");
  if (columns_.empty()) {
    columns_.push_back("epoch");
    for (const auto& [name, v] : values) {
      (void)v;
      columns_.push_back(name);
    }
    std::string header;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) header += ',';
      header += columns_[i];
    }
    header += '\n';
    if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
      return Status::Internal("short write to telemetry csv header");
    }
  }
  std::string row;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) row += ',';
    if (columns_[i] == "epoch") {
      row += std::to_string(epoch);
      continue;
    }
    const auto it = values.find(columns_[i]);
    if (it == values.end() || std::isnan(it->second)) continue;  // blank cell
    row += FormatDouble(it->second);
  }
  row += '\n';
  if (std::fwrite(row.data(), 1, row.size(), file_) != row.size()) {
    return Status::Internal("short write to telemetry csv row");
  }
  std::fflush(file_);
  return Status::Ok();
}

void TelemetryCsv::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace obs
}  // namespace msgcl
