// Umbrella header for the observability subsystem: metric registry,
// scoped-timer profiler + instrumentation macros, JSON writer, exporters,
// and training telemetry. See DESIGN.md §8 for the contract.
#ifndef MSGCL_OBS_OBS_H_
#define MSGCL_OBS_OBS_H_

#include "obs/export.h"    // IWYU pragma: export
#include "obs/json.h"      // IWYU pragma: export
#include "obs/profiler.h"  // IWYU pragma: export
#include "obs/registry.h"  // IWYU pragma: export
#include "obs/telemetry.h" // IWYU pragma: export

#endif  // MSGCL_OBS_OBS_H_
