// RAII scoped-timer profiler and the MSGCL_OBS_* instrumentation macros.
//
// ScopedTimer records into an OpStats slot on destruction. Self time is
// exact: a thread-local pointer chain lets each timer subtract the wall time
// of instrumented ops nested inside it, so for every op
//   self_ns == total_ns - sum(total_ns of direct instrumented children).
//
// The macros compile to `((void)0)` when MSGCL_OBS_ENABLED is 0, so the hot
// kernels carry zero overhead in an MSGCL_OBS=OFF build. Each macro caches
// its Registry slot in a function-local static — after the first call an
// instrumented site costs one steady_clock read at entry and a handful of
// relaxed atomic adds at exit.
#ifndef MSGCL_OBS_PROFILER_H_
#define MSGCL_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>

#include "obs/registry.h"
#include "parallel/parallel.h"

namespace msgcl {
namespace obs {

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Accumulates the total_ns of instrumented ops nested directly inside the
// innermost live ScopedTimer on this thread. Null at top level.
inline thread_local int64_t* tl_child_ns = nullptr;

/// Times a scope and records calls/total/self/bytes into `stats`. While
/// Registry::Global() tracing is on, also appends a TraceEvent. `name` must
/// outlive the timer (the macros pass string literals).
class ScopedTimer {
 public:
  ScopedTimer(OpStats& stats, const char* name, int64_t bytes = 0)
      : stats_(stats), name_(name), bytes_(bytes), start_ns_(NowNs()),
        parent_child_ns_(tl_child_ns) {
    tl_child_ns = &my_children_ns_;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const int64_t end_ns = NowNs();
    const int64_t elapsed = end_ns - start_ns_;
    tl_child_ns = parent_child_ns_;
    if (parent_child_ns_ != nullptr) *parent_child_ns_ += elapsed;
    stats_.calls.fetch_add(1, std::memory_order_relaxed);
    stats_.total_ns.fetch_add(elapsed, std::memory_order_relaxed);
    stats_.self_ns.fetch_add(elapsed - my_children_ns_, std::memory_order_relaxed);
    if (bytes_ != 0) stats_.bytes.fetch_add(bytes_, std::memory_order_relaxed);
    Registry& reg = Registry::Global();
    if (reg.trace_enabled()) {
      TraceEvent e;
      e.name = name_;
      e.ts_ns = start_ns_ - reg.trace_epoch_ns();
      e.dur_ns = elapsed;
      e.tid = parallel::ThreadIndex();
      reg.AppendTraceEvent(std::move(e));
    }
  }

 private:
  OpStats& stats_;
  const char* name_;
  int64_t bytes_;
  int64_t start_ns_;
  int64_t* parent_child_ns_;
  int64_t my_children_ns_ = 0;
};

}  // namespace obs
}  // namespace msgcl

// Identifier pasting so several macros can coexist in one scope.
#define MSGCL_OBS_CONCAT_INNER(a, b) a##b
#define MSGCL_OBS_CONCAT(a, b) MSGCL_OBS_CONCAT_INNER(a, b)

#if MSGCL_OBS_ENABLED

/// Times the enclosing scope under op `name` (string literal).
#define MSGCL_OBS_SCOPE(name)                                               \
  static ::msgcl::obs::OpStats& MSGCL_OBS_CONCAT(msgcl_obs_stats_,          \
                                                 __LINE__) =                \
      ::msgcl::obs::Registry::Global().GetOp(name);                         \
  ::msgcl::obs::ScopedTimer MSGCL_OBS_CONCAT(msgcl_obs_timer_, __LINE__)(   \
      MSGCL_OBS_CONCAT(msgcl_obs_stats_, __LINE__), name)

/// Like MSGCL_OBS_SCOPE, also accumulating `bytes` touched per call.
#define MSGCL_OBS_SCOPE_BYTES(name, bytes)                                  \
  static ::msgcl::obs::OpStats& MSGCL_OBS_CONCAT(msgcl_obs_stats_,          \
                                                 __LINE__) =                \
      ::msgcl::obs::Registry::Global().GetOp(name);                         \
  ::msgcl::obs::ScopedTimer MSGCL_OBS_CONCAT(msgcl_obs_timer_, __LINE__)(   \
      MSGCL_OBS_CONCAT(msgcl_obs_stats_, __LINE__), name,                   \
      static_cast<int64_t>(bytes))

/// Adds `n` to counter `name` (string literal).
#define MSGCL_OBS_COUNT(name, n)                                            \
  do {                                                                      \
    static ::msgcl::obs::Counter& msgcl_obs_counter_ =                      \
        ::msgcl::obs::Registry::Global().GetCounter(name);                  \
    msgcl_obs_counter_.Add(static_cast<int64_t>(n));                        \
  } while (0)

#else  // !MSGCL_OBS_ENABLED

#define MSGCL_OBS_SCOPE(name) ((void)0)
#define MSGCL_OBS_SCOPE_BYTES(name, bytes) ((void)0)
#define MSGCL_OBS_COUNT(name, n) ((void)0)

#endif  // MSGCL_OBS_ENABLED

#endif  // MSGCL_OBS_PROFILER_H_
