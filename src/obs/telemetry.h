// Training telemetry: per-step scalar accumulation and the per-epoch CSV.
//
// Loss components and grad norms are produced deep inside step functions
// (core/meta_sgcl.h, models/trainer.h) that have no channel back to FitLoop
// other than the scalar loss. RecordStepScalar gives them a side channel:
// each step records named scalars; once per epoch FitLoop drains the means
// and writes one CSV row. The scalar store is process-global, mirroring the
// metric registry.
//
// CSV contract: the column set is fixed by the first row written ("epoch" +
// the row's keys in name order). Later rows drop unknown keys and leave
// missing ones blank, so the file stays rectangular. Reopening in append
// mode re-reads the header so a resumed run keeps the original column
// order — telemetry survives checkpoint resume without duplicated or
// misaligned columns. Floats use the same locale-independent formatting as
// the JSON layer.
#ifndef MSGCL_OBS_TELEMETRY_H_
#define MSGCL_OBS_TELEMETRY_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "tensor/status.h"

namespace msgcl {
namespace obs {

/// Accumulates `value` under `name` in the global per-step scalar store.
void RecordStepScalar(const std::string& name, double value);

/// Returns the mean of every scalar recorded since the last drain and
/// clears the store. Keys in name order (std::map).
std::map<std::string, double> DrainStepScalarMeans();

/// Per-epoch telemetry CSV emitter.
class TelemetryCsv {
 public:
  TelemetryCsv() = default;
  ~TelemetryCsv() { Close(); }
  TelemetryCsv(const TelemetryCsv&) = delete;
  TelemetryCsv& operator=(const TelemetryCsv&) = delete;

  /// Opens `path`. With append=true and an existing non-empty file, adopts
  /// the column order from its header line; otherwise truncates and writes
  /// the header on the first row.
  Status Open(const std::string& path, bool append);

  /// Writes one row. On the first row of a fresh file, fixes the columns as
  /// "epoch" + the keys of `values` in name order and writes the header.
  /// NaN values become empty cells.
  Status WriteRow(int64_t epoch, const std::map<std::string, double>& values);

  void Close();
  bool is_open() const { return file_ != nullptr; }
  const std::vector<std::string>& columns() const { return columns_; }

 private:
  std::FILE* file_ = nullptr;
  std::vector<std::string> columns_;  // includes leading "epoch" once fixed
};

}  // namespace obs
}  // namespace msgcl

#endif  // MSGCL_OBS_TELEMETRY_H_
