// Loss functions shared across models: InfoNCE contrastive loss (paper
// Eq. 26) and the Gaussian-prior KL divergence (paper Eq. 24/25).
#ifndef MSGCL_NN_LOSSES_H_
#define MSGCL_NN_LOSSES_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "tensor/tensor.h"

namespace msgcl {
namespace nn {

/// Similarity used inside InfoNCE (paper Table VII compares the two).
enum class Similarity { kDot, kCosine };

/// InfoNCE between two views of a batch (paper Eq. 26).
///
/// For each row u, the positive is (z_u, z'_u); negatives are the other rows
/// of the *same* view (z_v, v != u) as in Eq. 26, plus optionally the other
/// rows of the second view (`cross_view_negatives`, the DuoRec convention).
/// Returns the mean cross-entropy of classifying the positive.
inline Tensor InfoNce(const Tensor& z, const Tensor& z_prime, float tau,
                      Similarity similarity = Similarity::kDot,
                      bool cross_view_negatives = true) {
  MSGCL_CHECK_EQ(z.ndim(), 2);
  MSGCL_CHECK(z.shape() == z_prime.shape());
  const int64_t B = z.dim(0);
  MSGCL_CHECK_GT(B, 1);
  const float inv_tau = 1.0f / tau;

  Tensor a = z, b = z_prime;
  if (similarity == Similarity::kCosine) {
    a = a.L2NormalizeLastDim();
    b = b.L2NormalizeLastDim();
  }

  // Cross-view block: [B, B]; diagonal holds positives.
  Tensor cross = a.MatMul(b.TransposeLast2()).MulScalar(inv_tau);
  // Same-view block: [B, B]; diagonal (self-similarity) masked out.
  Tensor same = a.MatMul(a.TransposeLast2()).MulScalar(inv_tau);
  std::vector<uint8_t> diag(B * B, 0);
  for (int64_t i = 0; i < B; ++i) diag[i * B + i] = 1;
  same = same.MaskedFill(diag, -1e9f);
  if (!cross_view_negatives) {
    // Keep only the positive column of the cross block.
    std::vector<uint8_t> offdiag(B * B, 1);
    for (int64_t i = 0; i < B; ++i) offdiag[i * B + i] = 0;
    cross = cross.MaskedFill(offdiag, -1e9f);
  }

  Tensor logits = Tensor::Concat({cross, same}, 1);  // [B, 2B]
  std::vector<int32_t> targets(B);
  std::iota(targets.begin(), targets.end(), 0);  // positive at column u
  return CrossEntropyLogits(logits, targets);
}

/// KL( N(mu, sigma^2) || N(0, I) ) from the log-variance parameterisation
/// (paper Eq. 24/25), *normalised per latent dimension* and averaged over
/// rows:
///   (0.5 / d) * sum_d (exp(logvar) + mu^2 - 1 - logvar).
/// The 1/d normalisation keeps the beta hyper-parameter comparable across
/// embedding sizes (the paper's Fig. 4e-f d-sweep); it is absorbed into beta
/// relative to the paper's summed form. `valid` (optional, size = rows of
/// mu) excludes padded rows from the average (entry 0 = excluded).
inline Tensor GaussianKl(const Tensor& mu, const Tensor& logvar,
                         const std::vector<uint8_t>* valid = nullptr) {
  MSGCL_CHECK(mu.shape() == logvar.shape());
  const int64_t d = mu.dim(-1);
  const int64_t rows = mu.numel() / d;
  Tensor kl_elem = logvar.Exp().Add(mu.Square()).AddScalar(-1.0f).Sub(logvar);
  Tensor kl_rows =
      kl_elem.SumLastDim().MulScalar(0.5f / static_cast<float>(d));  // [rows...]
  if (valid != nullptr) {
    MSGCL_CHECK_EQ(static_cast<int64_t>(valid->size()), rows);
    int64_t count = 0;
    std::vector<uint8_t> drop(rows);
    for (int64_t i = 0; i < rows; ++i) {
      drop[i] = (*valid)[i] ? 0 : 1;
      count += (*valid)[i] ? 1 : 0;
    }
    Tensor masked = kl_rows.Reshape({rows}).MaskedFill(drop, 0.0f);
    return masked.Sum().MulScalar(count > 0 ? 1.0f / static_cast<float>(count) : 0.0f);
  }
  return kl_rows.Mean();
}

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_LOSSES_H_
