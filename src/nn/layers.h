// Basic layers: Linear, Embedding, LayerNorm, Dropout.
#ifndef MSGCL_NN_LAYERS_H_
#define MSGCL_NN_LAYERS_H_

#include <vector>

#include "nn/init.h"
#include "nn/module.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace nn {

/// Affine map y = x W + b over the last dimension.
class Linear : public Module {
 public:
  /// Xavier-uniform weight; zero bias. Set `bias=false` for a pure matmul.
  Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true)
      : has_bias_(bias) {
    weight_ = RegisterParameter("weight", XavierUniform(in_features, out_features, rng));
    if (has_bias_) {
      bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
    }
  }

  /// x: [..., in_features] -> [..., out_features].
  Tensor Forward(const Tensor& x) const {
    Tensor y = x.MatMul(weight_);
    if (has_bias_) y = y.Add(bias_);
    return y;
  }

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

  /// Overwrites the bias with a constant. Used e.g. to start variance heads
  /// at small sigma (bias = -4 => sigma ~ 0.14) so reconstruction signal is
  /// not drowned in unit Gaussian noise early in VAE training.
  void InitBiasConstant(float value) {
    MSGCL_CHECK_MSG(has_bias_, "InitBiasConstant on a bias-free Linear");
    Tensor b = bias_;
    for (auto& v : b.data()) v = value;
  }

 private:
  Tensor weight_;
  Tensor bias_;
  bool has_bias_;
};

/// Learnable lookup table; row `padding_idx` receives no gradient.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng, int32_t padding_idx = -1,
            float init_stddev = 0.02f)
      : padding_idx_(padding_idx) {
    table_ = RegisterParameter("table", NormalInit({num_embeddings, dim}, rng, init_stddev));
    if (padding_idx_ >= 0) {
      // Zero the padding row so padded positions contribute nothing.
      auto& d = table_.data();
      const int64_t width = dim;
      for (int64_t j = 0; j < width; ++j) d[padding_idx_ * width + j] = 0.0f;
    }
  }

  /// Gathers rows; result shape is index_shape + [dim].
  Tensor Forward(const std::vector<int32_t>& indices, const Shape& index_shape) const {
    return EmbeddingLookup(table_, indices, index_shape, padding_idx_);
  }

  /// The full table, e.g. for scoring all items (z M^T) or Fig. 6 statistics.
  const Tensor& table() const { return table_; }
  int64_t num_embeddings() const { return table_.dim(0); }
  int64_t dim() const { return table_.dim(1); }

 private:
  Tensor table_;
  int32_t padding_idx_;
};

/// Layer normalisation over the last dimension with learnable affine.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f) : eps_(eps) {
    gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
    beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
  }

  Tensor Forward(const Tensor& x) const { return LayerNormLastDim(x, gamma_, beta_, eps_); }

 private:
  Tensor gamma_;
  Tensor beta_;
  float eps_;
};

/// Inverted dropout; identity in eval mode or when rate == 0.
class Dropout : public Module {
 public:
  explicit Dropout(float rate) : rate_(rate) {
    MSGCL_CHECK_MSG(rate >= 0.0f && rate < 1.0f, "dropout rate " << rate);
  }

  Tensor Forward(const Tensor& x, Rng& rng) const {
    if (!training() || rate_ == 0.0f) return x;
    std::vector<uint8_t> keep(x.numel());
    for (auto& k : keep) k = rng.Bernoulli(1.0 - rate_) ? 1 : 0;
    return x.DropoutMask(keep, 1.0f - rate_);
  }

  float rate() const { return rate_; }

 private:
  float rate_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_LAYERS_H_
