// Multi-head self-attention with causal and key-padding masking (paper §IV.C.1).
#ifndef MSGCL_NN_ATTENTION_H_
#define MSGCL_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/kv_cache.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "obs/profiler.h"
#include "parallel/parallel.h"

namespace msgcl {
namespace nn {

/// Multi-head scaled dot-product self-attention (Eq. 5-7 of the paper).
///
/// Masking:
///  * `causal` blocks attention to future positions (j > i), the paper's
///    "block all items after the current moment".
///  * `key_padding` (optional, size B*T, nonzero = padding) blocks attention
///    to padded key positions.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, float dropout_rate, Rng& rng)
      : dim_(dim),
        heads_(num_heads),
        wq_(dim, dim, rng, /*bias=*/true),
        wk_(dim, dim, rng, /*bias=*/true),
        wv_(dim, dim, rng, /*bias=*/true),
        wo_(dim, dim, rng, /*bias=*/true),
        attn_dropout_(dropout_rate) {
    MSGCL_CHECK_MSG(dim % num_heads == 0,
                    "dim " << dim << " not divisible by heads " << num_heads);
    RegisterChild("wq", &wq_);
    RegisterChild("wk", &wk_);
    RegisterChild("wv", &wv_);
    RegisterChild("wo", &wo_);
    RegisterChild("attn_dropout", &attn_dropout_);
  }

  /// x: [B, T, dim] -> [B, T, dim].
  ///
  /// `capture` (optional, serving only, DESIGN.md §12): records this layer's
  /// projected K/V into a session KvCache so later positions can be appended
  /// incrementally via ForwardIncremental. Requires B == 1 — a session is
  /// one user's sequence. The captured values are the exact buffers this
  /// forward attends over, so a later incremental step reads bit-identical
  /// state.
  Tensor Forward(const Tensor& x, bool causal, const std::vector<uint8_t>* key_padding,
                 Rng& rng, KvCache* capture = nullptr, int64_t layer = 0) const {
    MSGCL_OBS_SCOPE_BYTES("nn.attention.fwd", x.numel() * 4);
    const int64_t B = x.dim(0), T = x.dim(1);
    const int64_t dh = dim_ / heads_;

    auto split_heads = [&](const Tensor& t) {
      // [B, T, D] -> [B, H, T, dh]
      return t.Reshape({B, T, heads_, dh}).Permute({0, 2, 1, 3});
    };
    Tensor q = split_heads(wq_.Forward(x));
    Tensor k = split_heads(wk_.Forward(x));
    Tensor v = split_heads(wv_.Forward(x));
    if (capture != nullptr) {
      MSGCL_CHECK_EQ(B, 1);
      capture->CaptureLayer(layer, k.data().data(), v.data().data(), T);
    }

    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    Tensor scores = q.MatMul(k.TransposeLast2()).MulScalar(scale);  // [B, H, T, T]

    // Decide up front whether any position is masked (cheap: O(B*T) scan of
    // the padding flags) so the O(B*H*T*T) mask tensor is only built when
    // needed, and can be built in parallel without a shared flag.
    bool any_masked = causal && T > 1;
    if (!any_masked && key_padding != nullptr) {
      for (uint8_t p : *key_padding) {
        if (p != 0) {
          any_masked = true;
          break;
        }
      }
    }
    if (any_masked) {
      std::vector<uint8_t> mask(static_cast<size_t>(B) * heads_ * T * T, 0);
      // Each (b, h) plane is a disjoint slice of the mask buffer.
      parallel::For(0, B * heads_, 1, [&](int64_t bh0, int64_t bh1) {
        for (int64_t bh = bh0; bh < bh1; ++bh) {
          const int64_t b = bh / heads_;
          uint8_t* m = mask.data() + bh * T * T;
          for (int64_t i = 0; i < T; ++i) {
            for (int64_t j = 0; j < T; ++j) {
              const bool future = causal && j > i;
              const bool pad = key_padding != nullptr && (*key_padding)[b * T + j] != 0;
              if (future || pad) m[i * T + j] = 1;
            }
          }
        }
      });
      scores = scores.MaskedFill(mask, -1e9f);
    }

    Tensor attn = scores.SoftmaxLastDim();
    attn = attn_dropout_.Forward(attn, rng);
    Tensor ctx = attn.MatMul(v);                       // [B, H, T, dh]
    ctx = ctx.Permute({0, 2, 1, 3}).Reshape({B, T, dim_});
    return wo_.Forward(ctx);
  }

  /// Incremental step for session serving (DESIGN.md §12): attends one new
  /// position `x` [1, 1, dim] against the `cache.len()` cached positions of
  /// `layer`, writing the new position's K/V at slot len() (the caller
  /// advances the cache once per position, after every layer has written).
  ///
  /// Bitwise contract: this is the last query row of a cold causal
  /// Forward over the full sequence, computed through the same Tensor
  /// kernels (row-wise matmul, per-row softmax), so the output is
  /// bit-identical to that row of a full re-encode at any thread count. No
  /// mask is needed — the newest position attends every cached one, and a
  /// cold encode's masked entries contribute exact zeros (exp(-1e9 - max)
  /// underflows to 0.0f), never perturbing the unmasked rows.
  Tensor ForwardIncremental(const Tensor& x, KvCache& cache, int64_t layer,
                            Rng& rng) const {
    MSGCL_OBS_SCOPE_BYTES("nn.attention.inc", x.numel() * 4);
    MSGCL_CHECK_EQ(x.dim(0), 1);
    MSGCL_CHECK_EQ(x.dim(1), 1);
    const int64_t dh = dim_ / heads_;
    MSGCL_CHECK_EQ(cache.heads(), heads_);
    MSGCL_CHECK_EQ(cache.head_dim(), dh);

    Tensor q = wq_.Forward(x).Reshape({1, 1, heads_, dh}).Permute({0, 2, 1, 3});
    Tensor k1 = wk_.Forward(x);  // [1, 1, dim] == [heads * dh] row
    Tensor v1 = wv_.Forward(x);
    cache.WriteRow(layer, k1.data().data(), v1.data().data());
    const int64_t L = cache.len() + 1;  // keys visible to the new position

    // Materialize [1, H, L, dh] K/V views of the cache (row t of head h sits
    // at (h * capacity + t) * dh; heads are re-packed contiguously).
    std::vector<float> kbuf(static_cast<size_t>(heads_ * L * dh));
    std::vector<float> vbuf(kbuf.size());
    for (int64_t h = 0; h < heads_; ++h) {
      const size_t src = static_cast<size_t>(h * cache.capacity() * dh);
      const size_t dst = static_cast<size_t>(h * L * dh);
      const size_t n = static_cast<size_t>(L * dh) * sizeof(float);
      std::memcpy(kbuf.data() + dst, cache.k(layer) + src, n);
      std::memcpy(vbuf.data() + dst, cache.v(layer) + src, n);
    }
    Tensor K = Tensor::FromVector({1, heads_, L, dh}, std::move(kbuf));
    Tensor V = Tensor::FromVector({1, heads_, L, dh}, std::move(vbuf));

    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    Tensor scores = q.MatMul(K.TransposeLast2()).MulScalar(scale);  // [1, H, 1, L]
    Tensor attn = scores.SoftmaxLastDim();
    attn = attn_dropout_.Forward(attn, rng);  // identity in eval mode
    Tensor ctx = attn.MatMul(V);              // [1, H, 1, dh]
    ctx = ctx.Permute({0, 2, 1, 3}).Reshape({1, 1, dim_});
    return wo_.Forward(ctx);
  }

  int64_t dim() const { return dim_; }
  int64_t heads() const { return heads_; }

 private:
  int64_t dim_;
  int64_t heads_;
  Linear wq_, wk_, wv_, wo_;
  Dropout attn_dropout_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_ATTENTION_H_
