// Multi-head self-attention with causal and key-padding masking (paper §IV.C.1).
#ifndef MSGCL_NN_ATTENTION_H_
#define MSGCL_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "obs/profiler.h"
#include "parallel/parallel.h"

namespace msgcl {
namespace nn {

/// Multi-head scaled dot-product self-attention (Eq. 5-7 of the paper).
///
/// Masking:
///  * `causal` blocks attention to future positions (j > i), the paper's
///    "block all items after the current moment".
///  * `key_padding` (optional, size B*T, nonzero = padding) blocks attention
///    to padded key positions.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, float dropout_rate, Rng& rng)
      : dim_(dim),
        heads_(num_heads),
        wq_(dim, dim, rng, /*bias=*/true),
        wk_(dim, dim, rng, /*bias=*/true),
        wv_(dim, dim, rng, /*bias=*/true),
        wo_(dim, dim, rng, /*bias=*/true),
        attn_dropout_(dropout_rate) {
    MSGCL_CHECK_MSG(dim % num_heads == 0,
                    "dim " << dim << " not divisible by heads " << num_heads);
    RegisterChild("wq", &wq_);
    RegisterChild("wk", &wk_);
    RegisterChild("wv", &wv_);
    RegisterChild("wo", &wo_);
    RegisterChild("attn_dropout", &attn_dropout_);
  }

  /// x: [B, T, dim] -> [B, T, dim].
  Tensor Forward(const Tensor& x, bool causal, const std::vector<uint8_t>* key_padding,
                 Rng& rng) const {
    MSGCL_OBS_SCOPE_BYTES("nn.attention.fwd", x.numel() * 4);
    const int64_t B = x.dim(0), T = x.dim(1);
    const int64_t dh = dim_ / heads_;

    auto split_heads = [&](const Tensor& t) {
      // [B, T, D] -> [B, H, T, dh]
      return t.Reshape({B, T, heads_, dh}).Permute({0, 2, 1, 3});
    };
    Tensor q = split_heads(wq_.Forward(x));
    Tensor k = split_heads(wk_.Forward(x));
    Tensor v = split_heads(wv_.Forward(x));

    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    Tensor scores = q.MatMul(k.TransposeLast2()).MulScalar(scale);  // [B, H, T, T]

    // Decide up front whether any position is masked (cheap: O(B*T) scan of
    // the padding flags) so the O(B*H*T*T) mask tensor is only built when
    // needed, and can be built in parallel without a shared flag.
    bool any_masked = causal && T > 1;
    if (!any_masked && key_padding != nullptr) {
      for (uint8_t p : *key_padding) {
        if (p != 0) {
          any_masked = true;
          break;
        }
      }
    }
    if (any_masked) {
      std::vector<uint8_t> mask(static_cast<size_t>(B) * heads_ * T * T, 0);
      // Each (b, h) plane is a disjoint slice of the mask buffer.
      parallel::For(0, B * heads_, 1, [&](int64_t bh0, int64_t bh1) {
        for (int64_t bh = bh0; bh < bh1; ++bh) {
          const int64_t b = bh / heads_;
          uint8_t* m = mask.data() + bh * T * T;
          for (int64_t i = 0; i < T; ++i) {
            for (int64_t j = 0; j < T; ++j) {
              const bool future = causal && j > i;
              const bool pad = key_padding != nullptr && (*key_padding)[b * T + j] != 0;
              if (future || pad) m[i * T + j] = 1;
            }
          }
        }
      });
      scores = scores.MaskedFill(mask, -1e9f);
    }

    Tensor attn = scores.SoftmaxLastDim();
    attn = attn_dropout_.Forward(attn, rng);
    Tensor ctx = attn.MatMul(v);                       // [B, H, T, dh]
    ctx = ctx.Permute({0, 2, 1, 3}).Reshape({B, T, dim_});
    return wo_.Forward(ctx);
  }

  int64_t dim() const { return dim_; }
  int64_t heads() const { return heads_; }

 private:
  int64_t dim_;
  int64_t heads_;
  Linear wq_, wk_, wv_, wo_;
  Dropout attn_dropout_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_ATTENTION_H_
