// Per-session key/value state for incremental causal attention (DESIGN.md
// §12). One KvCache holds, for every layer of one Transformer stack, the
// projected keys and values of the positions encoded so far, laid out
// [heads, capacity, head_dim] per layer so appending position t writes one
// head_dim-sized row per head without moving earlier rows — the `update_cache`
// op idiom: a preallocated cache tensor updated in place at an index.
//
// Buffers are allocated at full `capacity` up front, so `bytes()` is constant
// over the cache's lifetime — the serving-layer session store relies on that
// for exact byte accounting (an entry's cost never changes after insert).
//
// No thread-safety of its own: a KvCache belongs to exactly one session, and
// the serving layer serializes all scoring (score_lock.h), so reads and
// writes are never concurrent.
#ifndef MSGCL_NN_KV_CACHE_H_
#define MSGCL_NN_KV_CACHE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/macros.h"

namespace msgcl {
namespace nn {

/// Cached K/V for one Transformer stack: `layers` pairs of
/// [heads, capacity, head_dim] buffers plus the number of valid positions.
class KvCache {
 public:
  KvCache() = default;

  /// Allocates (or reallocates) full-capacity buffers and resets the length.
  void Init(int64_t layers, int64_t heads, int64_t head_dim, int64_t capacity) {
    MSGCL_CHECK_GT(layers, 0);
    MSGCL_CHECK_GT(heads, 0);
    MSGCL_CHECK_GT(head_dim, 0);
    MSGCL_CHECK_GT(capacity, 0);
    layers_ = layers;
    heads_ = heads;
    head_dim_ = head_dim;
    capacity_ = capacity;
    len_ = 0;
    const size_t per_layer = static_cast<size_t>(heads * capacity * head_dim);
    k_.assign(static_cast<size_t>(layers), std::vector<float>(per_layer, 0.0f));
    v_.assign(static_cast<size_t>(layers), std::vector<float>(per_layer, 0.0f));
  }

  bool initialized() const { return capacity_ > 0; }
  int64_t layers() const { return layers_; }
  int64_t heads() const { return heads_; }
  int64_t head_dim() const { return head_dim_; }
  int64_t capacity() const { return capacity_; }
  /// Number of positions currently cached (valid rows per head).
  int64_t len() const { return len_; }

  /// Drops all cached positions without freeing buffers.
  void Reset() { len_ = 0; }

  /// Raw per-layer buffers, [heads, capacity, head_dim] row-major.
  const float* k(int64_t layer) const { return k_[CheckLayer(layer)].data(); }
  const float* v(int64_t layer) const { return v_[CheckLayer(layer)].data(); }

  /// Writes position `len()` of every head of `layer`. `k_row`/`v_row` are
  /// the [heads * head_dim] projection of the appended position (the natural
  /// layout of a [1, 1, dim] tensor). Call Advance() once per position after
  /// all layers have written.
  void WriteRow(int64_t layer, const float* k_row, const float* v_row) {
    MSGCL_CHECK_LT(len_, capacity_);
    std::vector<float>& kl = k_[CheckLayer(layer)];
    std::vector<float>& vl = v_[static_cast<size_t>(layer)];
    for (int64_t h = 0; h < heads_; ++h) {
      const size_t dst = static_cast<size_t>((h * capacity_ + len_) * head_dim_);
      std::memcpy(kl.data() + dst, k_row + h * head_dim_,
                  static_cast<size_t>(head_dim_) * sizeof(float));
      std::memcpy(vl.data() + dst, v_row + h * head_dim_,
                  static_cast<size_t>(head_dim_) * sizeof(float));
    }
  }

  /// Marks one appended position valid across all layers.
  void Advance() {
    MSGCL_CHECK_LT(len_, capacity_);
    ++len_;
  }

  /// Captures `t` positions of one layer from a cold full encode: `k`/`v`
  /// are contiguous [heads, t, head_dim] buffers (B == 1 tensors after the
  /// split-heads permute). Call set_len(t) after capturing every layer.
  void CaptureLayer(int64_t layer, const float* k, const float* v, int64_t t) {
    MSGCL_CHECK_LE(t, capacity_);
    std::vector<float>& kl = k_[CheckLayer(layer)];
    std::vector<float>& vl = v_[static_cast<size_t>(layer)];
    for (int64_t h = 0; h < heads_; ++h) {
      const size_t dst = static_cast<size_t>(h * capacity_ * head_dim_);
      const size_t src = static_cast<size_t>(h * t * head_dim_);
      const size_t n = static_cast<size_t>(t * head_dim_) * sizeof(float);
      std::memcpy(kl.data() + dst, k + src, n);
      std::memcpy(vl.data() + dst, v + src, n);
    }
  }

  /// Sets the valid-position count after a cold capture.
  void set_len(int64_t len) {
    MSGCL_CHECK_GE(len, 0);
    MSGCL_CHECK_LE(len, capacity_);
    len_ = len;
  }

  /// Heap bytes held by the K/V buffers — constant after Init().
  int64_t bytes() const {
    return 2 * layers_ * heads_ * capacity_ * head_dim_ *
           static_cast<int64_t>(sizeof(float));
  }

 private:
  size_t CheckLayer(int64_t layer) const {
    MSGCL_CHECK_GE(layer, 0);
    MSGCL_CHECK_LT(layer, layers_);
    return static_cast<size_t>(layer);
  }

  int64_t layers_ = 0;
  int64_t heads_ = 0;
  int64_t head_dim_ = 0;
  int64_t capacity_ = 0;
  int64_t len_ = 0;
  std::vector<std::vector<float>> k_;
  std::vector<std::vector<float>> v_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_KV_CACHE_H_
