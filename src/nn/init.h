// Weight initialisation schemes.
#ifndef MSGCL_NN_INIT_H_
#define MSGCL_NN_INIT_H_

#include <cmath>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace nn {

/// Xavier/Glorot uniform init for a [fan_in, fan_out] weight matrix.
inline Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand({fan_in, fan_out}, rng, -limit, limit);
}

/// Truncated-free normal init with the given stddev (used for embeddings;
/// SASRec's reference implementation uses N(0, 0.02)).
inline Tensor NormalInit(Shape shape, Rng& rng, float stddev = 0.02f) {
  return Tensor::Randn(std::move(shape), rng, stddev);
}

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_INIT_H_
