// Transformer encoder stack (paper §IV.C): multi-head self-attention +
// position-wise feed-forward with residual connections, layer norm and
// dropout. Used as both the sequential encoder and the sequential decoder of
// the Seq2Seq generator, and as the shared backbone of all SAN baselines.
#ifndef MSGCL_NN_TRANSFORMER_H_
#define MSGCL_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace msgcl {
namespace nn {

/// Position-wise feed-forward: ReLU(x W1 + b1) W2 + b2 (Eq. 8; d x d mats).
class PositionwiseFfn : public Module {
 public:
  PositionwiseFfn(int64_t dim, float dropout_rate, Rng& rng)
      : w1_(dim, dim, rng), w2_(dim, dim, rng), dropout_(dropout_rate) {
    RegisterChild("w1", &w1_);
    RegisterChild("w2", &w2_);
    RegisterChild("dropout", &dropout_);
  }

  Tensor Forward(const Tensor& x, Rng& rng) const {
    Tensor h = dropout_.Forward(w1_.Forward(x).Relu(), rng);
    return w2_.Forward(h);
  }

 private:
  Linear w1_, w2_;
  Dropout dropout_;
};

/// One self-attention block with post-norm residual wiring (SASRec style):
///   x = LN(x + Dropout(Attn(x))); x = LN(x + Dropout(FFN(x))).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int64_t heads, float dropout_rate, Rng& rng)
      : attn_(dim, heads, dropout_rate, rng),
        ffn_(dim, dropout_rate, rng),
        ln1_(dim),
        ln2_(dim),
        dropout_(dropout_rate) {
    RegisterChild("attn", &attn_);
    RegisterChild("ffn", &ffn_);
    RegisterChild("ln1", &ln1_);
    RegisterChild("ln2", &ln2_);
    RegisterChild("dropout", &dropout_);
  }

  /// `capture`/`layer`: optionally record this block's attention K/V into a
  /// session cache (see MultiHeadSelfAttention::Forward; B must be 1).
  Tensor Forward(const Tensor& x, bool causal, const std::vector<uint8_t>* key_padding,
                 Rng& rng, nn::KvCache* capture = nullptr, int64_t layer = 0) const {
    Tensor a = attn_.Forward(x, causal, key_padding, rng, capture, layer);
    Tensor h = ln1_.Forward(x.Add(dropout_.Forward(a, rng)));
    Tensor f = ffn_.Forward(h, rng);
    return ln2_.Forward(h.Add(dropout_.Forward(f, rng)));
  }

  /// Appends one position against cached K/V — the last row of a cold
  /// Forward, bit-identical (DESIGN.md §12). x: [1, 1, dim].
  Tensor ForwardIncremental(const Tensor& x, KvCache& cache, int64_t layer,
                            Rng& rng) const {
    Tensor a = attn_.ForwardIncremental(x, cache, layer, rng);
    Tensor h = ln1_.Forward(x.Add(dropout_.Forward(a, rng)));
    Tensor f = ffn_.Forward(h, rng);
    return ln2_.Forward(h.Add(dropout_.Forward(f, rng)));
  }

 private:
  MultiHeadSelfAttention attn_;
  PositionwiseFfn ffn_;
  LayerNorm ln1_, ln2_;
  Dropout dropout_;
};

/// Configuration for a Transformer encoder stack.
struct TransformerConfig {
  int64_t dim = 32;
  int64_t heads = 2;
  int64_t layers = 2;
  float dropout = 0.2f;
};

/// A stack of TransformerBlocks (Eq. 9-10). Embedding is applied by callers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng& rng) : config_(config) {
    blocks_.reserve(config.layers);
    for (int64_t l = 0; l < config.layers; ++l) {
      blocks_.push_back(
          std::make_unique<TransformerBlock>(config.dim, config.heads, config.dropout, rng));
      RegisterChild("layer" + std::to_string(l), blocks_.back().get());
    }
  }

  /// x: [B, T, dim] -> [B, T, dim].
  ///
  /// `skip_layer` (optional) bypasses one block — the "random layer drop"
  /// model augmentation of SRMA; -1 runs the full stack.
  ///
  /// `capture` (optional, serving): records every block's K/V into a session
  /// cache during this cold encode and sets the cache length to T, priming
  /// it for ForwardIncremental. Incompatible with skip_layer (an incremental
  /// step always runs the full stack) and requires B == 1.
  Tensor Forward(const Tensor& x, bool causal, const std::vector<uint8_t>* key_padding,
                 Rng& rng, int64_t skip_layer = -1, KvCache* capture = nullptr) const {
    if (capture != nullptr) {
      MSGCL_CHECK_EQ(skip_layer, -1);
      CheckCache(*capture, x.dim(1));
    }
    Tensor h = x;
    for (size_t l = 0; l < blocks_.size(); ++l) {
      if (static_cast<int64_t>(l) == skip_layer) continue;
      h = blocks_[l]->Forward(h, causal, key_padding, rng, capture,
                              static_cast<int64_t>(l));
    }
    if (capture != nullptr) capture->set_len(x.dim(1));
    return h;
  }

  /// Appends one position [1, 1, dim] against a cache primed by a captured
  /// cold Forward; advances the cache. Bit-identical to the last row of a
  /// cold causal Forward over the extended sequence (DESIGN.md §12).
  Tensor ForwardIncremental(const Tensor& x, KvCache& cache, Rng& rng) const {
    CheckCache(cache, cache.len() + 1);
    Tensor h = x;
    for (size_t l = 0; l < blocks_.size(); ++l) {
      h = blocks_[l]->ForwardIncremental(h, cache, static_cast<int64_t>(l), rng);
    }
    cache.Advance();
    return h;
  }

  /// Sizes `cache` for this stack with room for `capacity` positions.
  void InitCache(KvCache& cache, int64_t capacity) const {
    cache.Init(num_layers(), config_.heads, config_.dim / config_.heads, capacity);
  }

  int64_t num_layers() const { return static_cast<int64_t>(blocks_.size()); }
  const TransformerConfig& config() const { return config_; }

 private:
  void CheckCache(const KvCache& cache, int64_t needed) const {
    MSGCL_CHECK(cache.initialized());
    MSGCL_CHECK_EQ(cache.layers(), num_layers());
    MSGCL_CHECK_EQ(cache.heads(), config_.heads);
    MSGCL_CHECK_EQ(cache.head_dim(), config_.dim / config_.heads);
    MSGCL_CHECK_LE(needed, cache.capacity());
  }

  TransformerConfig config_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_TRANSFORMER_H_
