// Learning-rate schedules. The paper trains with a constant Adam rate;
// these schedules are library extensions for longer training runs.
#ifndef MSGCL_NN_SCHEDULE_H_
#define MSGCL_NN_SCHEDULE_H_

#include <cmath>
#include <cstdint>

#include "tensor/macros.h"

namespace msgcl {
namespace nn {

/// Base interface: learning rate as a function of the global step.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float Lr(int64_t step) const = 0;
};

/// Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float Lr(int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Multiplies the rate by `gamma` every `step_size` steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base_lr, int64_t step_size, float gamma)
      : base_(base_lr), step_size_(step_size), gamma_(gamma) {
    MSGCL_CHECK_GT(step_size, 0);
  }
  float Lr(int64_t step) const override {
    return base_ * std::pow(gamma_, static_cast<float>(step / step_size_));
  }

 private:
  float base_;
  int64_t step_size_;
  float gamma_;
};

/// Linear warmup to `base_lr` over `warmup` steps, then cosine decay to
/// `min_lr` at `total` steps (clamped beyond).
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float base_lr, int64_t warmup_steps, int64_t total_steps,
                 float min_lr = 0.0f)
      : base_(base_lr), warmup_(warmup_steps), total_(total_steps), min_(min_lr) {
    MSGCL_CHECK_GT(total_steps, warmup_steps);
  }
  float Lr(int64_t step) const override {
    if (warmup_ > 0 && step < warmup_) {
      return base_ * static_cast<float>(step + 1) / static_cast<float>(warmup_);
    }
    const double t = std::min<double>(1.0, static_cast<double>(step - warmup_) /
                                               static_cast<double>(total_ - warmup_));
    return min_ + (base_ - min_) * 0.5f * static_cast<float>(1.0 + std::cos(M_PI * t));
  }

 private:
  float base_;
  int64_t warmup_;
  int64_t total_;
  float min_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_SCHEDULE_H_
