// Umbrella header for the neural-network layer library.
#ifndef MSGCL_NN_NN_H_
#define MSGCL_NN_NN_H_

#include "nn/attention.h"   // IWYU pragma: export
#include "nn/gru.h"         // IWYU pragma: export
#include "nn/init.h"        // IWYU pragma: export
#include "nn/kv_cache.h"    // IWYU pragma: export
#include "nn/layers.h"      // IWYU pragma: export
#include "nn/losses.h"      // IWYU pragma: export
#include "nn/module.h"      // IWYU pragma: export
#include "nn/numeric.h"     // IWYU pragma: export
#include "nn/optim.h"       // IWYU pragma: export
#include "nn/schedule.h"    // IWYU pragma: export
#include "nn/serialize.h"   // IWYU pragma: export
#include "nn/transformer.h" // IWYU pragma: export

#endif  // MSGCL_NN_NN_H_
