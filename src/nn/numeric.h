// Numeric-health scans used by the fault-tolerant training runtime: cheap
// checks that a buffer / parameter set / gradient set contains only finite
// values, so a NaN or Inf produced by one bad step can be caught before it
// poisons every subsequent optimizer update.
#ifndef MSGCL_NN_NUMERIC_H_
#define MSGCL_NN_NUMERIC_H_

#include <cmath>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace nn {

/// True iff every element of `values` is finite (no NaN/Inf). Templated on
/// the allocator so both plain vectors and arena-backed FloatBuf pass.
template <typename Alloc>
inline bool AllFinite(const std::vector<float, Alloc>& values) {
  // Summing and checking once is measurably cheaper than per-element
  // std::isfinite branching: NaN and Inf both propagate through addition.
  float acc = 0.0f;
  for (float v : values) acc += v;
  if (std::isfinite(acc)) return true;
  // Slow path only on failure (or pathological cancellation): confirm
  // element-wise so a finite-but-overflowing sum cannot false-positive.
  for (float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// True iff every parameter tensor's data is finite.
inline bool AllFinite(const std::vector<Tensor>& params) {
  for (const auto& p : params) {
    if (!AllFinite(p.data())) return false;
  }
  return true;
}

/// True iff every accumulated gradient is finite (empty gradients pass).
inline bool AllGradsFinite(const std::vector<Tensor>& params) {
  for (const auto& p : params) {
    if (!p.grad().empty() && !AllFinite(p.grad())) return false;
  }
  return true;
}

/// True iff every parameter of `module`'s subtree is finite.
inline bool AllFinite(const Module& module) { return AllFinite(module.Parameters()); }

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_NUMERIC_H_
