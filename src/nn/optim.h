// Optimizers (Adam, SGD) and gradient clipping.
#ifndef MSGCL_NN_OPTIM_H_
#define MSGCL_NN_OPTIM_H_

#include <cmath>
#include <vector>

#include "obs/profiler.h"
#include "parallel/parallel.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace nn {

/// Snapshot of an optimizer's mutable state (moment buffers, step counter,
/// learning rate). Used by the fault-tolerant runtime to roll back to the
/// last healthy step and by v2 checkpoints to resume training bit-exactly.
struct OptimizerState {
  std::vector<std::vector<float>> slots;  // per-optimizer moment buffers
  int64_t step_count = 0;
  float lr = 0.0f;
};

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Learning-rate control, shared by all optimizers so runtime recovery can
  /// decay the rate without knowing the concrete type.
  virtual void set_lr(float lr) = 0;
  virtual float lr() const = 0;

  /// Exports the mutable state (moments, step counter, lr).
  virtual OptimizerState GetState() const {
    OptimizerState s;
    s.lr = lr();
    return s;
  }

  /// Restores state captured by GetState. Returns false when the snapshot is
  /// structurally incompatible (wrong slot count/sizes); the optimizer is
  /// unchanged in that case.
  virtual bool SetState(const OptimizerState& state) {
    if (!state.slots.empty()) return false;
    set_lr(state.lr);
    return true;
  }

  /// Zeroes every parameter's gradient buffer.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD: p -= lr * g.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr) : Optimizer(std::move(params)), lr_(lr) {}

  void Step() override {
    MSGCL_OBS_SCOPE("nn.sgd.step");
    for (auto& p : params_) {
      const auto& g = p.grad();
      if (g.empty()) continue;
      auto& d = p.data();
      // Per-index updates are independent -> disjoint writes.
      parallel::For(0, static_cast<int64_t>(d.size()), 8192,
                    [&](int64_t i0, int64_t i1) {
                      for (int64_t i = i0; i < i1; ++i) d[i] -= lr_ * g[i];
                    });
    }
  }

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }

 private:
  float lr_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f)
      : Optimizer(std::move(params)),
        lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps),
        weight_decay_(weight_decay) {
    m_.resize(params_.size());
    v_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      m_[i].assign(params_[i].numel(), 0.0f);
      v_[i].assign(params_[i].numel(), 0.0f);
    }
  }

  void Step() override {
    MSGCL_OBS_SCOPE("nn.adam.step");
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t pi = 0; pi < params_.size(); ++pi) {
      auto& p = params_[pi];
      const auto& g = p.grad();
      if (g.empty()) continue;
      auto& d = p.data();
      auto& m = m_[pi];
      auto& v = v_[pi];
      // Per-index updates are independent -> disjoint writes.
      parallel::For(0, static_cast<int64_t>(d.size()), 8192,
                    [&](int64_t i0, int64_t i1) {
                      for (int64_t i = i0; i < i1; ++i) {
                        float gi = g[i];
                        if (weight_decay_ != 0.0f) gi += weight_decay_ * d[i];
                        m[i] = beta1_ * m[i] + (1.0f - beta1_) * gi;
                        v[i] = beta2_ * v[i] + (1.0f - beta2_) * gi * gi;
                        const float mhat = m[i] / bc1;
                        const float vhat = v[i] / bc2;
                        d[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
                      }
                    });
    }
  }

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }
  int64_t step_count() const { return t_; }

  OptimizerState GetState() const override {
    OptimizerState s;
    s.slots.reserve(m_.size() + v_.size());
    for (const auto& m : m_) s.slots.push_back(m);
    for (const auto& v : v_) s.slots.push_back(v);
    s.step_count = t_;
    s.lr = lr_;
    return s;
  }

  bool SetState(const OptimizerState& state) override {
    if (state.slots.size() != m_.size() + v_.size()) return false;
    for (size_t i = 0; i < m_.size(); ++i) {
      if (state.slots[i].size() != m_[i].size()) return false;
      if (state.slots[m_.size() + i].size() != v_[i].size()) return false;
    }
    for (size_t i = 0; i < m_.size(); ++i) {
      m_[i] = state.slots[i];
      v_[i] = state.slots[m_.size() + i];
    }
    t_ = state.step_count;
    lr_ = state.lr;
    return true;
  }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
inline float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  double sq = 0.0;
  for (const auto& p : params) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params) {
      Tensor q = p;
      for (auto& g : q.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

/// Linear KL-annealing schedule: weight ramps 0 -> beta over `warmup` steps
/// (the paper's "KL annealing" heuristic in §IV.E.2).
class KlAnnealing {
 public:
  KlAnnealing(float beta, int64_t warmup_steps) : beta_(beta), warmup_(warmup_steps) {}

  /// Weight at the given global step.
  float Weight(int64_t step) const {
    if (warmup_ <= 0) return beta_;
    if (step >= warmup_) return beta_;
    return beta_ * static_cast<float>(step) / static_cast<float>(warmup_);
  }

 private:
  float beta_;
  int64_t warmup_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_OPTIM_H_
