// Model checkpointing: save/load a Module's named parameters to a simple
// binary container. The format is self-describing (name + shape per entry)
// and loading verifies that names and shapes match the target module, so a
// checkpoint cannot silently load into the wrong architecture.
//
// v1 format (little-endian) — model weights only:
//   magic "MSGCLCKPT\0"  u32 version=1  u64 num_entries
//   per entry: u32 name_len, name bytes, u32 ndim, i64 dims..., f32 data...
//
// v2 format — resumable training state. Same header and model section as v1,
// followed by a trainer section and a CRC32 integrity footer:
//   magic  u32 version=2
//   u64 num_entries, entries as in v1
//   u32 num_optimizers
//     per optimizer: u32 num_slots, per slot: u64 size, f32 data...
//                    i64 step_count, f32 lr
//   i64 epoch (last completed)
//   rng state: 4x u64 words, f32 cached, u8 has_cached
//   f64 best_ndcg, i64 best_epoch, i64 bad_evals
//   u32 num_best_weights, per: u64 size, f32 data...
//   u32 crc32 over every preceding byte
//
// Both writers are atomic: the payload goes to "<path>.tmp" and is renamed
// over the target only after a successful write, so a crash mid-save can
// never leave a half-written checkpoint under the real name. v2 loads verify
// the CRC before trusting any field, so truncation and bit-flips are
// detected up front instead of surfacing as garbage weights.
#ifndef MSGCL_NN_SERIALIZE_H_
#define MSGCL_NN_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "nn/module.h"
#include "nn/optim.h"
#include "obs/registry.h"
#include "tensor/rng.h"
#include "tensor/status.h"

namespace msgcl {
namespace nn {

namespace internal {
inline constexpr char kCkptMagic[10] = "MSGCLCKPT";  // includes the NUL
inline constexpr uint32_t kCkptVersion = 1;
inline constexpr uint32_t kCkptVersionV2 = 2;
// Sanity bounds for untrusted headers: no real checkpoint in this repo comes
// anywhere near them, so anything larger is corruption or hostile input.
inline constexpr uint64_t kMaxEntries = 1u << 20;
inline constexpr uint32_t kMaxNameLen = 4096;
inline constexpr uint32_t kMaxRank = 16;
inline constexpr int64_t kMaxElements = int64_t{1} << 33;  // 32 GiB of f32

/// Standard CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
inline uint32_t Crc32(const char* data, size_t size, uint32_t seed = 0) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Append-only little-endian serializer into a memory buffer.
class ByteWriter {
 public:
  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const char* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }
  void Bytes(const char* data, size_t size) { buf_.append(data, size); }
  template <typename Alloc>
  void Floats(const std::vector<float, Alloc>& v) {
    buf_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(float));
  }
  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over an in-memory checkpoint image. Every accessor
/// fails (sticky `ok() == false`) instead of reading past the end, so hostile
/// lengths can never drive an out-of-bounds read.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Pod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!Ensure(sizeof(T))) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool Bytes(char* out, size_t size) {
    if (!Ensure(size)) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  bool Skip(size_t size) {
    if (!Ensure(size)) return false;
    pos_ += size;
    return true;
  }
  bool Floats(std::vector<float>* out, uint64_t count) {
    if (count > static_cast<uint64_t>(kMaxElements) || !Ensure(count * sizeof(float))) {
      return false;
    }
    out->resize(count);
    std::memcpy(out->data(), data_ + pos_, count * sizeof(float));
    pos_ += count * sizeof(float);
    return true;
  }
  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Ensure(size_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Writes `payload` to `path` via a sibling tmp file + rename, so the target
/// name only ever holds a complete image.
inline Status WriteFileAtomic(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::NotFound("cannot open " + tmp + " for writing");
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::Internal("write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

/// Serializes the v1 model section (entry table) of `module`.
inline void WriteModelSection(const Module& module, ByteWriter* w) {
  auto params = module.NamedParameters();
  const uint64_t n = params.size();
  w->Pod(n);
  for (const auto& [name, tensor] : params) {
    const uint32_t name_len = static_cast<uint32_t>(name.size());
    w->Pod(name_len);
    w->Bytes(name.data(), name_len);
    const uint32_t ndim = static_cast<uint32_t>(tensor.shape().size());
    w->Pod(ndim);
    for (int64_t d : tensor.shape()) w->Pod(d);
    w->Floats(tensor.data());
  }
}

/// Parses the model section into staged per-parameter buffers, verifying
/// names/shapes against `module` without modifying it. On success `staged`
/// holds one buffer per parameter in module order.
inline Status ReadModelSection(const Module& module, ByteReader* r,
                               std::vector<std::vector<float>>* staged) {
  auto params = module.NamedParameters();
  uint64_t n = 0;
  if (!r->Pod(&n)) return Status::InvalidArgument("truncated checkpoint header");
  if (n > kMaxEntries) {
    return Status::InvalidArgument("implausible entry count " + std::to_string(n));
  }
  if (n != params.size()) {
    return Status::InvalidArgument("checkpoint has " + std::to_string(n) +
                                   " entries, module has " +
                                   std::to_string(params.size()));
  }
  staged->assign(params.size(), {});
  std::vector<bool> seen(params.size(), false);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t name_len = 0;
    if (!r->Pod(&name_len) || name_len > kMaxNameLen) {
      return Status::InvalidArgument("corrupt entry name");
    }
    std::string name(name_len, '\0');
    if (!r->Bytes(name.data(), name_len)) {
      return Status::InvalidArgument("corrupt entry name");
    }
    uint32_t ndim = 0;
    if (!r->Pod(&ndim) || ndim > kMaxRank) {
      return Status::InvalidArgument("corrupt entry rank");
    }
    Shape shape(ndim);
    int64_t elems = 1;
    for (auto& d : shape) {
      if (!r->Pod(&d)) return Status::InvalidArgument("truncated entry shape");
      if (d < 0 || (d > 0 && elems > kMaxElements / d)) {
        return Status::InvalidArgument("hostile dimension in entry '" + name + "'");
      }
      elems *= d;
    }
    size_t idx = params.size();
    for (size_t p = 0; p < params.size(); ++p) {
      if (!seen[p] && params[p].first == name) {
        idx = p;
        break;
      }
    }
    if (idx == params.size()) {
      return Status::InvalidArgument("checkpoint entry '" + name +
                                     "' has no matching parameter");
    }
    if (params[idx].second.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for '" + name + "': checkpoint " +
                                     ShapeToString(shape) + " vs module " +
                                     ShapeToString(params[idx].second.shape()));
    }
    if (!r->Floats(&(*staged)[idx], static_cast<uint64_t>(elems))) {
      return Status::InvalidArgument("truncated checkpoint at '" + name + "'");
    }
    seen[idx] = true;
  }
  return Status::Ok();
}

/// Reads a whole file into memory. Checkpoints in this repo are small enough
/// that an in-memory image (needed anyway for CRC verification) is the
/// simplest safe representation.
inline Status ReadFileImage(const std::string& path, std::string* image) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed for " + path);
  *image = std::move(data);
  return Status::Ok();
}
}  // namespace internal

/// Writes every named parameter of `module` to `path` (v1 format, atomic).
inline Status SaveCheckpoint(const Module& module, const std::string& path) {
  internal::ByteWriter w;
  w.Bytes(internal::kCkptMagic, sizeof(internal::kCkptMagic));
  w.Pod(internal::kCkptVersion);
  internal::WriteModelSection(module, &w);
  return internal::WriteFileAtomic(path, w.buffer());
}

/// Loads a v1 checkpoint into `module`. Every entry must match an existing
/// parameter by name and shape; a mismatch, a hostile header, or a truncated
/// file fails without modifying anything (the load is staged, then
/// committed).
inline Status LoadCheckpoint(Module& module, const std::string& path) {
  std::string image;
  if (Status s = internal::ReadFileImage(path, &image); !s.ok()) return s;
  internal::ByteReader r(image.data(), image.size());
  char magic[sizeof(internal::kCkptMagic)];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, internal::kCkptMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(path + " is not a Meta-SGCL checkpoint");
  }
  uint32_t version = 0;
  if (!r.Pod(&version)) return Status::InvalidArgument("truncated checkpoint header");
  if (version != internal::kCkptVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  std::vector<std::vector<float>> staged;
  if (Status s = internal::ReadModelSection(module, &r, &staged); !s.ok()) return s;
  // Commit.
  auto params = module.NamedParameters();
  for (size_t p = 0; p < params.size(); ++p) {
    params[p].second.data().assign(staged[p].begin(), staged[p].end());
  }
  return Status::Ok();
}

/// Trainer-side bookkeeping carried by a v2 checkpoint alongside the weights
/// and optimizer moments: where the run was, its RNG stream, and the
/// early-stopping state (including the best weights pending restore).
struct TrainerProgress {
  int64_t epoch = -1;  // last fully completed epoch (-1 = none)
  Rng::State rng;      // loop RNG state at that epoch boundary
  double best_ndcg = -1.0;
  int64_t best_epoch = -1;
  int64_t bad_evals = 0;
  std::vector<std::vector<float>> best_weights;  // empty = no eval yet
};

/// Writes a v2 resumable-training checkpoint: model weights, each
/// optimizer's moments/step/lr, and `progress`, sealed with a CRC32 footer
/// and written atomically.
inline Status SaveTrainState(const Module& module,
                             const std::vector<const Optimizer*>& optimizers,
                             const TrainerProgress& progress, const std::string& path) {
  internal::ByteWriter w;
  w.Bytes(internal::kCkptMagic, sizeof(internal::kCkptMagic));
  w.Pod(internal::kCkptVersionV2);
  internal::WriteModelSection(module, &w);

  const uint32_t num_opts = static_cast<uint32_t>(optimizers.size());
  w.Pod(num_opts);
  for (const Optimizer* opt : optimizers) {
    OptimizerState s = opt->GetState();
    const uint32_t num_slots = static_cast<uint32_t>(s.slots.size());
    w.Pod(num_slots);
    for (const auto& slot : s.slots) {
      w.Pod(static_cast<uint64_t>(slot.size()));
      w.Floats(slot);
    }
    w.Pod(s.step_count);
    w.Pod(s.lr);
  }

  w.Pod(progress.epoch);
  for (uint64_t word : progress.rng.words) w.Pod(word);
  w.Pod(progress.rng.cached);
  w.Pod(static_cast<uint8_t>(progress.rng.has_cached ? 1 : 0));
  w.Pod(progress.best_ndcg);
  w.Pod(progress.best_epoch);
  w.Pod(progress.bad_evals);
  const uint32_t num_best = static_cast<uint32_t>(progress.best_weights.size());
  w.Pod(num_best);
  for (const auto& bw : progress.best_weights) {
    w.Pod(static_cast<uint64_t>(bw.size()));
    w.Floats(bw);
  }

  const uint32_t crc = internal::Crc32(w.buffer().data(), w.buffer().size());
  internal::ByteWriter sealed;
  sealed.Bytes(w.buffer().data(), w.buffer().size());
  sealed.Pod(crc);
  Status s = internal::WriteFileAtomic(path, sealed.buffer());
  if (s.ok()) {
    // Cold path: counted unconditionally (not macro-gated) so checkpoint
    // volume stays observable in MSGCL_OBS=OFF builds.
    auto& reg = obs::Registry::Global();
    reg.GetCounter("runtime.checkpoint.saves").Add(1);
    reg.GetCounter("runtime.checkpoint.bytes").Add(
        static_cast<int64_t>(sealed.buffer().size()));
  }
  return s;
}

/// Loads a v2 checkpoint, verifying the CRC32 footer before trusting any
/// field. The module weights, optimizer states, and `progress` are only
/// committed when the whole image parses and matches structurally; any
/// truncation, bit-flip, or shape/count mismatch returns a non-OK Status and
/// leaves every output untouched.
inline Status LoadTrainState(Module& module, const std::vector<Optimizer*>& optimizers,
                             TrainerProgress* progress, const std::string& path) {
  std::string image;
  if (Status s = internal::ReadFileImage(path, &image); !s.ok()) return s;
  if (image.size() < sizeof(internal::kCkptMagic) + 2 * sizeof(uint32_t)) {
    return Status::InvalidArgument(path + " is too short to be a v2 checkpoint");
  }
  const size_t body_size = image.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + body_size, sizeof(stored_crc));
  const uint32_t actual_crc = internal::Crc32(image.data(), body_size);
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument(path + " failed CRC32 integrity check (corrupt or truncated)");
  }

  internal::ByteReader r(image.data(), body_size);
  char magic[sizeof(internal::kCkptMagic)];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, internal::kCkptMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(path + " is not a Meta-SGCL checkpoint");
  }
  uint32_t version = 0;
  if (!r.Pod(&version)) return Status::InvalidArgument("truncated checkpoint header");
  if (version != internal::kCkptVersionV2) {
    return Status::InvalidArgument("expected v2 train state, found version " +
                                   std::to_string(version));
  }

  std::vector<std::vector<float>> staged;
  if (Status s = internal::ReadModelSection(module, &r, &staged); !s.ok()) return s;

  uint32_t num_opts = 0;
  if (!r.Pod(&num_opts)) return Status::InvalidArgument("truncated optimizer section");
  if (num_opts != optimizers.size()) {
    return Status::InvalidArgument("checkpoint has " + std::to_string(num_opts) +
                                   " optimizers, trainer has " +
                                   std::to_string(optimizers.size()));
  }
  std::vector<OptimizerState> opt_states(num_opts);
  for (uint32_t o = 0; o < num_opts; ++o) {
    uint32_t num_slots = 0;
    if (!r.Pod(&num_slots) || num_slots > internal::kMaxEntries) {
      return Status::InvalidArgument("corrupt optimizer slot count");
    }
    opt_states[o].slots.resize(num_slots);
    for (uint32_t s = 0; s < num_slots; ++s) {
      uint64_t size = 0;
      if (!r.Pod(&size) || !r.Floats(&opt_states[o].slots[s], size)) {
        return Status::InvalidArgument("truncated optimizer slot");
      }
    }
    if (!r.Pod(&opt_states[o].step_count) || !r.Pod(&opt_states[o].lr)) {
      return Status::InvalidArgument("truncated optimizer state");
    }
  }

  TrainerProgress loaded;
  uint8_t has_cached = 0;
  bool ok = r.Pod(&loaded.epoch);
  for (uint64_t& word : loaded.rng.words) ok = ok && r.Pod(&word);
  ok = ok && r.Pod(&loaded.rng.cached) && r.Pod(&has_cached) &&
       r.Pod(&loaded.best_ndcg) && r.Pod(&loaded.best_epoch) && r.Pod(&loaded.bad_evals);
  if (!ok) return Status::InvalidArgument("truncated progress section");
  loaded.rng.has_cached = has_cached != 0;
  uint32_t num_best = 0;
  if (!r.Pod(&num_best) || num_best > internal::kMaxEntries) {
    return Status::InvalidArgument("corrupt best-weights count");
  }
  auto params = module.NamedParameters();
  if (num_best != 0 && num_best != params.size()) {
    return Status::InvalidArgument("best-weights count does not match module");
  }
  loaded.best_weights.resize(num_best);
  for (uint32_t i = 0; i < num_best; ++i) {
    uint64_t size = 0;
    if (!r.Pod(&size) || size != static_cast<uint64_t>(params[i].second.numel()) ||
        !r.Floats(&loaded.best_weights[i], size)) {
      return Status::InvalidArgument("corrupt best-weights entry");
    }
  }
  if (!r.AtEnd()) return Status::InvalidArgument("trailing bytes in checkpoint");

  // Structural dry-run of the optimizer restore before committing anything.
  for (uint32_t o = 0; o < num_opts; ++o) {
    OptimizerState current = optimizers[o]->GetState();
    if (current.slots.size() != opt_states[o].slots.size()) {
      return Status::InvalidArgument("optimizer " + std::to_string(o) +
                                     " slot count mismatch");
    }
    for (size_t s = 0; s < current.slots.size(); ++s) {
      if (current.slots[s].size() != opt_states[o].slots[s].size()) {
        return Status::InvalidArgument("optimizer " + std::to_string(o) +
                                       " slot size mismatch");
      }
    }
  }

  // Commit.
  for (size_t p = 0; p < params.size(); ++p) {
    params[p].second.data().assign(staged[p].begin(), staged[p].end());
  }
  for (uint32_t o = 0; o < num_opts; ++o) {
    if (!optimizers[o]->SetState(opt_states[o])) {
      return Status::Internal("optimizer state restore failed after validation");
    }
  }
  if (progress != nullptr) *progress = std::move(loaded);
  return Status::Ok();
}

/// Reads only the `epoch` field out of a v2 checkpoint without needing the
/// module it belongs to: verifies the CRC footer, then walks (and
/// bounds-checks) the model and optimizer sections structurally. The online
/// trainer uses this to extend a warm-start run — FitLoop counts absolute
/// epochs, so "train k more epochs" needs the checkpoint's own epoch first.
inline Result<int64_t> PeekTrainStateEpoch(const std::string& path) {
  std::string image;
  if (Status s = internal::ReadFileImage(path, &image); !s.ok()) return s;
  if (image.size() < sizeof(internal::kCkptMagic) + 2 * sizeof(uint32_t)) {
    return Status::InvalidArgument(path + " is too short to be a v2 checkpoint");
  }
  const size_t body_size = image.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + body_size, sizeof(stored_crc));
  if (stored_crc != internal::Crc32(image.data(), body_size)) {
    return Status::InvalidArgument(path + " failed CRC32 integrity check (corrupt or truncated)");
  }

  internal::ByteReader r(image.data(), body_size);
  char magic[sizeof(internal::kCkptMagic)];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, internal::kCkptMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(path + " is not a Meta-SGCL checkpoint");
  }
  uint32_t version = 0;
  if (!r.Pod(&version)) return Status::InvalidArgument("truncated checkpoint header");
  if (version != internal::kCkptVersionV2) {
    return Status::InvalidArgument("expected v2 train state, found version " +
                                   std::to_string(version));
  }

  // Model section, structurally (no module to match against).
  uint64_t num_entries = 0;
  if (!r.Pod(&num_entries) || num_entries > internal::kMaxEntries) {
    return Status::InvalidArgument("corrupt entry count");
  }
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint32_t name_len = 0;
    if (!r.Pod(&name_len) || name_len > internal::kMaxNameLen || !r.Skip(name_len)) {
      return Status::InvalidArgument("corrupt entry name");
    }
    uint32_t ndim = 0;
    if (!r.Pod(&ndim) || ndim > internal::kMaxRank) {
      return Status::InvalidArgument("corrupt entry rank");
    }
    int64_t elems = 1;
    for (uint32_t d = 0; d < ndim; ++d) {
      int64_t dim = 0;
      if (!r.Pod(&dim)) return Status::InvalidArgument("truncated entry shape");
      if (dim < 0 || (dim > 0 && elems > internal::kMaxElements / dim)) {
        return Status::InvalidArgument("hostile dimension in checkpoint entry");
      }
      elems *= dim;
    }
    if (!r.Skip(static_cast<size_t>(elems) * sizeof(float))) {
      return Status::InvalidArgument("truncated checkpoint entry");
    }
  }

  uint32_t num_opts = 0;
  if (!r.Pod(&num_opts) || num_opts > internal::kMaxEntries) {
    return Status::InvalidArgument("corrupt optimizer count");
  }
  for (uint32_t o = 0; o < num_opts; ++o) {
    uint32_t num_slots = 0;
    if (!r.Pod(&num_slots) || num_slots > internal::kMaxEntries) {
      return Status::InvalidArgument("corrupt optimizer slot count");
    }
    for (uint32_t s = 0; s < num_slots; ++s) {
      uint64_t size = 0;
      if (!r.Pod(&size) || size > static_cast<uint64_t>(internal::kMaxElements) ||
          !r.Skip(static_cast<size_t>(size) * sizeof(float))) {
        return Status::InvalidArgument("truncated optimizer slot");
      }
    }
    int64_t step_count = 0;
    float lr = 0.0f;
    if (!r.Pod(&step_count) || !r.Pod(&lr)) {
      return Status::InvalidArgument("truncated optimizer state");
    }
  }

  int64_t epoch = 0;
  if (!r.Pod(&epoch)) return Status::InvalidArgument("truncated progress section");
  return epoch;
}

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_SERIALIZE_H_
