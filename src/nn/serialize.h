// Model checkpointing: save/load a Module's named parameters to a simple
// binary container. The format is self-describing (name + shape per entry)
// and loading verifies that names and shapes match the target module, so a
// checkpoint cannot silently load into the wrong architecture.
//
// Format (little-endian):
//   magic "MSGCLCKPT\0"  u32 version  u64 num_entries
//   per entry: u32 name_len, name bytes, u32 ndim, i64 dims..., f32 data...
#ifndef MSGCL_NN_SERIALIZE_H_
#define MSGCL_NN_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/status.h"

namespace msgcl {
namespace nn {

namespace internal {
inline constexpr char kCkptMagic[10] = "MSGCLCKPT";  // includes the NUL
inline constexpr uint32_t kCkptVersion = 1;
}  // namespace internal

/// Writes every named parameter of `module` to `path`.
inline Status SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  auto params = module.NamedParameters();
  out.write(internal::kCkptMagic, sizeof(internal::kCkptMagic));
  const uint32_t version = internal::kCkptVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t n = params.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& [name, tensor] : params) {
    const uint32_t name_len = static_cast<uint32_t>(name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), name_len);
    const uint32_t ndim = static_cast<uint32_t>(tensor.shape().size());
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int64_t d : tensor.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(tensor.data().data()),
              static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

/// Loads a checkpoint into `module`. Every entry must match an existing
/// parameter by name and shape; a mismatch or a missing/extra entry fails
/// without modifying anything (the load is staged, then committed).
inline Status LoadCheckpoint(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  char magic[sizeof(internal::kCkptMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, internal::kCkptMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(path + " is not a Meta-SGCL checkpoint");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != internal::kCkptVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));

  auto params = module.NamedParameters();
  if (n != params.size()) {
    return Status::InvalidArgument("checkpoint has " + std::to_string(n) +
                                   " entries, module has " +
                                   std::to_string(params.size()));
  }
  std::vector<std::vector<float>> staged(params.size());
  std::vector<bool> seen(params.size(), false);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) return Status::InvalidArgument("corrupt entry name");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    if (!in || ndim > 16) return Status::InvalidArgument("corrupt entry rank");
    Shape shape(ndim);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
    // Find the matching parameter.
    size_t idx = params.size();
    for (size_t p = 0; p < params.size(); ++p) {
      if (!seen[p] && params[p].first == name) {
        idx = p;
        break;
      }
    }
    if (idx == params.size()) {
      return Status::InvalidArgument("checkpoint entry '" + name +
                                     "' has no matching parameter");
    }
    if (params[idx].second.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for '" + name + "': checkpoint " +
                                     ShapeToString(shape) + " vs module " +
                                     ShapeToString(params[idx].second.shape()));
    }
    staged[idx].resize(NumElements(shape));
    in.read(reinterpret_cast<char*>(staged[idx].data()),
            static_cast<std::streamsize>(staged[idx].size() * sizeof(float)));
    if (!in) return Status::InvalidArgument("truncated checkpoint at '" + name + "'");
    seen[idx] = true;
  }
  // Commit.
  for (size_t p = 0; p < params.size(); ++p) {
    params[p].second.data() = std::move(staged[p]);
  }
  return Status::Ok();
}

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_SERIALIZE_H_
