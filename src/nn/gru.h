// GRU cell and layer (for the GRU4Rec baseline).
#ifndef MSGCL_NN_GRU_H_
#define MSGCL_NN_GRU_H_

#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace msgcl {
namespace nn {

/// Single GRU step. Gate layout in the fused 3h matrices: [reset, update, new].
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
      : hidden_(hidden_dim), wx_(input_dim, 3 * hidden_dim, rng), wh_(hidden_dim, 3 * hidden_dim, rng) {
    RegisterChild("wx", &wx_);
    RegisterChild("wh", &wh_);
  }

  /// x: [B, input_dim], h: [B, hidden_dim] -> new hidden [B, hidden_dim].
  Tensor Forward(const Tensor& x, const Tensor& h) const {
    Tensor gx = wx_.Forward(x);  // [B, 3h]
    Tensor gh = wh_.Forward(h);
    Tensor r = gx.Narrow(-1, 0, hidden_).Add(gh.Narrow(-1, 0, hidden_)).Sigmoid();
    Tensor z = gx.Narrow(-1, hidden_, hidden_).Add(gh.Narrow(-1, hidden_, hidden_)).Sigmoid();
    Tensor n = gx.Narrow(-1, 2 * hidden_, hidden_)
                   .Add(r.Mul(gh.Narrow(-1, 2 * hidden_, hidden_)))
                   .Tanh();
    // h' = (1 - z) * n + z * h = n + z * (h - n)
    return n.Add(z.Mul(h.Sub(n)));
  }

  int64_t hidden_dim() const { return hidden_; }

 private:
  int64_t hidden_;
  Linear wx_, wh_;
};

/// Unrolled GRU over a [B, T, input_dim] sequence; returns [B, T, hidden].
class Gru : public Module {
 public:
  Gru(int64_t input_dim, int64_t hidden_dim, Rng& rng) : cell_(input_dim, hidden_dim, rng) {
    RegisterChild("cell", &cell_);
  }

  Tensor Forward(const Tensor& x) const {
    const int64_t B = x.dim(0), T = x.dim(1);
    const int64_t H = cell_.hidden_dim();
    Tensor h = Tensor::Zeros({B, H});
    std::vector<Tensor> outputs;
    outputs.reserve(T);
    for (int64_t t = 0; t < T; ++t) {
      Tensor xt = x.Narrow(1, t, 1).Reshape({B, x.dim(2)});
      h = cell_.Forward(xt, h);
      outputs.push_back(h.Reshape({B, 1, H}));
    }
    return Tensor::Concat(outputs, 1);
  }

 private:
  GruCell cell_;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_GRU_H_
