// Module system: hierarchical parameter registration, train/eval mode, and
// parameter traversal — the base for every layer and model in this repo.
#ifndef MSGCL_NN_MODULE_H_
#define MSGCL_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace msgcl {
namespace nn {

/// Base class for layers and models.
///
/// Subclasses register their trainable tensors with RegisterParameter and
/// their member sub-layers with RegisterChild (members are owned by
/// composition; the registry holds non-owning pointers). Parameters(),
/// NamedParameters() and SetTraining() traverse the whole subtree.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules are identity objects; copying would silently duplicate
  // parameters.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters in this subtree (depth-first, registration
  /// order). Tensors are shared handles, so optimizers mutate in place.
  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> out;
    CollectParameters("", &out, nullptr);
    return out;
  }

  /// Parameters with hierarchical dotted names, e.g. "encoder.layer0.wq.weight".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const {
    std::vector<Tensor> tensors;
    std::vector<std::string> names;
    CollectParameters("", &tensors, &names);
    std::vector<std::pair<std::string, Tensor>> out;
    out.reserve(tensors.size());
    for (size_t i = 0; i < tensors.size(); ++i) out.emplace_back(names[i], tensors[i]);
    return out;
  }

  /// Total number of scalar parameters (the paper's space-complexity lens).
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.numel();
    return n;
  }

  /// Switches train/eval mode for this subtree (affects dropout etc.).
  void SetTraining(bool training) {
    training_ = training;
    for (auto& [name, child] : children_) child->SetTraining(training);
  }
  bool training() const { return training_; }

  /// Zeroes gradients of every parameter in the subtree.
  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

 protected:
  /// Registers a trainable tensor; marks it requires_grad.
  Tensor RegisterParameter(std::string name, Tensor t) {
    t.set_requires_grad(true);
    params_.emplace_back(std::move(name), t);
    return t;
  }

  /// Registers a member sub-module (non-owning; member must outlive this).
  void RegisterChild(std::string name, Module* child) {
    MSGCL_CHECK(child != nullptr);
    children_.emplace_back(std::move(name), child);
  }

 private:
  void CollectParameters(const std::string& prefix, std::vector<Tensor>* tensors,
                         std::vector<std::string>* names) const {
    for (const auto& [name, t] : params_) {
      tensors->push_back(t);
      if (names) names->push_back(prefix.empty() ? name : prefix + "." + name);
    }
    for (const auto& [name, child] : children_) {
      child->CollectParameters(prefix.empty() ? name : prefix + "." + name, tensors, names);
    }
  }

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace msgcl

#endif  // MSGCL_NN_MODULE_H_
