// Top-k ranking metrics: Hit Ratio and NDCG (paper §V.A "Metrics").
#ifndef MSGCL_EVAL_METRICS_H_
#define MSGCL_EVAL_METRICS_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "tensor/macros.h"

namespace msgcl {
namespace eval {

/// How items whose score equals the target's score contribute to its rank.
///
/// The BERT4Rec replicability study (Petrov & Macdonald, RecSys 2022) shows
/// that leaving this ambiguous silently corrupts reported HR/NDCG: a
/// degenerate model that scores every item equally gets HR@k = 1.0 under an
/// optimistic policy but ~k/N under an average one. The policy is therefore
/// an explicit parameter everywhere a rank is computed.
enum class TiePolicy {
  /// Target placed above every equal-scored item (rank = #strictly greater).
  /// Default — matches the historical behavior of this repo and most public
  /// SASRec/BERT4Rec implementations, keeping existing goldens bit-identical.
  kOptimistic,
  /// Target placed mid-pack: rank = #greater + #ties / 2 (may be fractional).
  kAverage,
  /// Target placed below every equal-scored item: rank = #greater + #ties.
  kPessimistic,
};

/// Rank of the target plus how contested that rank was.
struct RankResult {
  double rank = 0.0;     // 0-based; 0 = best. Fractional under kAverage.
  int64_t num_tied = 0;  // other items whose score equals the target's
};

/// 0-based rank of `target` under `scores[0..n)` (rank 0 = highest score).
///
/// Contract: `scores` is indexed by item id; index 0 (padding) is skipped.
/// Items scoring strictly above the target always count toward the rank;
/// equal-scored items contribute per `tie` (see TiePolicy). Computed by
/// counting, so no sort is needed and the result is exact.
///
/// NaN scores follow the BetterScored total order (eval/topk.h): NaN ranks
/// strictly below every non-NaN score. A NaN-scored competitor never counts
/// against a finite target, and a NaN-scored target ranks below all finite
/// items, tied only with other NaNs — without the explicit branch every
/// float comparison against a NaN target is false, which silently reported
/// the best possible rank (0) for the most broken score a model can emit.
inline RankResult RankOfTargetDetailed(const float* scores, size_t n, int32_t target,
                                       TiePolicy tie = TiePolicy::kOptimistic) {
  MSGCL_CHECK_GT(target, 0);
  MSGCL_CHECK_LT(static_cast<size_t>(target), n);
  const float t = scores[target];
  const bool target_nan = std::isnan(t);
  int64_t greater = 0, tied = 0;
  for (size_t i = 1; i < n; ++i) {
    if (static_cast<int32_t>(i) == target) continue;
    const float s = scores[i];
    if (target_nan) {
      if (std::isnan(s)) {
        ++tied;
      } else {
        ++greater;
      }
    } else if (s > t) {
      ++greater;
    } else if (s == t) {
      ++tied;
    }
  }
  RankResult r;
  r.num_tied = tied;
  switch (tie) {
    case TiePolicy::kOptimistic: r.rank = static_cast<double>(greater); break;
    case TiePolicy::kAverage:
      r.rank = static_cast<double>(greater) + static_cast<double>(tied) * 0.5;
      break;
    case TiePolicy::kPessimistic: r.rank = static_cast<double>(greater + tied); break;
  }
  return r;
}

/// Rank only, over a raw row (no per-user copy needed at the call site).
inline double RankOfTarget(const float* scores, size_t n, int32_t target,
                           TiePolicy tie = TiePolicy::kOptimistic) {
  return RankOfTargetDetailed(scores, n, target, tie).rank;
}

/// Convenience overload for callers that hold a whole row as a vector.
inline double RankOfTarget(const std::vector<float>& scores, int32_t target,
                           TiePolicy tie = TiePolicy::kOptimistic) {
  return RankOfTarget(scores.data(), scores.size(), target, tie);
}

/// HR@k contribution of one ranked example: 1 if rank < k.
inline double HitAt(double rank, int k) { return rank < k ? 1.0 : 0.0; }

/// NDCG@k contribution of one ranked example with a single relevant item:
/// 1/log2(rank + 2) if rank < k, else 0.
inline double NdcgAt(double rank, int k) {
  return rank < k ? 1.0 / std::log2(rank + 2.0) : 0.0;
}

/// Accumulates HR@k / NDCG@k over users for a fixed set of cutoffs.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(std::vector<int> ks = {5, 10}) : ks_(std::move(ks)) {
    MSGCL_CHECK_LE(ks_.size(), hr_.size());
  }

  void Add(double rank) {
    ++count_;
    mrr_ += 1.0 / (rank + 1.0);
    for (size_t i = 0; i < ks_.size(); ++i) {
      hr_[i] += HitAt(rank, ks_[i]);
      ndcg_[i] += NdcgAt(rank, ks_[i]);
    }
  }

  int64_t count() const { return count_; }

  double Hr(int k) const { return Get(hr_, k); }
  double Ndcg(int k) const { return Get(ndcg_, k); }
  /// Mean reciprocal rank over all accumulated examples (extension metric;
  /// not reported in the paper but standard in the area).
  double Mrr() const { return count_ == 0 ? 0.0 : mrr_ / static_cast<double>(count_); }

 private:
  double Get(const std::array<double, 8>& acc, int k) const {
    for (size_t i = 0; i < ks_.size(); ++i) {
      if (ks_[i] == k) return count_ == 0 ? 0.0 : acc[i] / static_cast<double>(count_);
    }
    MSGCL_CHECK_MSG(false, "cutoff k=" << k << " was not configured");
    return 0.0;
  }

  std::vector<int> ks_;
  std::array<double, 8> hr_{};
  std::array<double, 8> ndcg_{};
  double mrr_ = 0.0;
  int64_t count_ = 0;
};

/// Final metric bundle reported by the evaluator (the four Table II columns).
struct Metrics {
  double hr5 = 0.0;
  double hr10 = 0.0;
  double ndcg5 = 0.0;
  double ndcg10 = 0.0;
  double mrr = 0.0;  // extension metric (not in the paper's tables)

  std::string ToString() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "HR@5=%.4f HR@10=%.4f NDCG@5=%.4f NDCG@10=%.4f", hr5,
                  hr10, ndcg5, ndcg10);
    return buf;
  }
};

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_METRICS_H_
