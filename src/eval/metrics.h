// Top-k ranking metrics: Hit Ratio and NDCG (paper §V.A "Metrics").
#ifndef MSGCL_EVAL_METRICS_H_
#define MSGCL_EVAL_METRICS_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "tensor/macros.h"

namespace msgcl {
namespace eval {

/// 0-based rank of `target` under `scores` (rank 0 = highest score).
/// Computed by counting strictly-greater scores, so full sorting is avoided;
/// ties rank the target optimistically last among equals is avoided by
/// counting ties at half weight? No — ties count as ranked above only when
/// strictly greater, matching common implementations.
/// `scores` is indexed by item id; index 0 (padding) is skipped.
inline int64_t RankOfTarget(const std::vector<float>& scores, int32_t target) {
  MSGCL_CHECK_GT(target, 0);
  MSGCL_CHECK_LT(static_cast<size_t>(target), scores.size());
  const float t = scores[target];
  int64_t rank = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (static_cast<int32_t>(i) != target && scores[i] > t) ++rank;
  }
  return rank;
}

/// HR@k contribution of one ranked example: 1 if rank < k.
inline double HitAt(int64_t rank, int k) { return rank < k ? 1.0 : 0.0; }

/// NDCG@k contribution of one ranked example with a single relevant item:
/// 1/log2(rank + 2) if rank < k, else 0.
inline double NdcgAt(int64_t rank, int k) {
  return rank < k ? 1.0 / std::log2(static_cast<double>(rank) + 2.0) : 0.0;
}

/// Accumulates HR@k / NDCG@k over users for a fixed set of cutoffs.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(std::vector<int> ks = {5, 10}) : ks_(std::move(ks)) {
    MSGCL_CHECK_LE(ks_.size(), hr_.size());
  }

  void Add(int64_t rank) {
    ++count_;
    mrr_ += 1.0 / static_cast<double>(rank + 1);
    for (size_t i = 0; i < ks_.size(); ++i) {
      hr_[i] += HitAt(rank, ks_[i]);
      ndcg_[i] += NdcgAt(rank, ks_[i]);
    }
  }

  int64_t count() const { return count_; }

  double Hr(int k) const { return Get(hr_, k); }
  double Ndcg(int k) const { return Get(ndcg_, k); }
  /// Mean reciprocal rank over all accumulated examples (extension metric;
  /// not reported in the paper but standard in the area).
  double Mrr() const { return count_ == 0 ? 0.0 : mrr_ / static_cast<double>(count_); }

 private:
  double Get(const std::array<double, 8>& acc, int k) const {
    for (size_t i = 0; i < ks_.size(); ++i) {
      if (ks_[i] == k) return count_ == 0 ? 0.0 : acc[i] / static_cast<double>(count_);
    }
    MSGCL_CHECK_MSG(false, "cutoff k=" << k << " was not configured");
    return 0.0;
  }

  std::vector<int> ks_;
  std::array<double, 8> hr_{};
  std::array<double, 8> ndcg_{};
  double mrr_ = 0.0;
  int64_t count_ = 0;
};

/// Final metric bundle reported by the evaluator (the four Table II columns).
struct Metrics {
  double hr5 = 0.0;
  double hr10 = 0.0;
  double ndcg5 = 0.0;
  double ndcg10 = 0.0;
  double mrr = 0.0;  // extension metric (not in the paper's tables)

  std::string ToString() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "HR@5=%.4f HR@10=%.4f NDCG@5=%.4f NDCG@10=%.4f", hr5,
                  hr10, ndcg5, ndcg10);
    return buf;
  }
};

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_METRICS_H_
