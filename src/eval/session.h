// Incremental per-session scoring interface (DESIGN.md §12).
//
// A SessionState is the cached transformer state of one user's session: the
// item window it was encoded from, one KvCache per Transformer stack the
// model runs at inference (SASRec: 1; Meta-SGCL with its decoder: 2), and the
// final-position hidden vector the scorer dots against the item table.
//
// Session layout vs the padded eval layout: offline eval and the stateless
// serve path left-pad every history into a fixed [B, max_len] window with
// per-slot positions, so growing a history by one item shifts every earlier
// item's slot — and its position embedding — making K/V reuse impossible
// bitwise. The session path instead encodes a history's window (its most
// recent min(len, max_len) items) unpadded at absolute positions 0..L-1,
// so appending an item extends the sequence without disturbing earlier
// positions. The parity contract is *within* this layout: a warm append is
// bit-identical to a cold session encode of the same window, at any thread
// count. (At a full window the two layouts coincide in shape; short
// histories score slightly differently than the left-padded path, which is
// why sessions are opt-in per request via a nonzero session id.)
#ifndef MSGCL_EVAL_SESSION_H_
#define MSGCL_EVAL_SESSION_H_

#include <cstdint>
#include <vector>

#include "eval/topk.h"
#include "nn/kv_cache.h"

namespace msgcl {
namespace eval {

/// Cached per-session transformer state. `owner`/`epoch` tag which model
/// revision encoded it: the serving layer treats an entry whose tag differs
/// from the live (owner, epoch) as stale and re-encodes cold — stale K/V
/// from old weights is never scored by new weights (DESIGN.md §12).
struct SessionState {
  std::vector<int32_t> items;        // the encoded window, oldest first
  std::vector<nn::KvCache> stacks;   // one per Transformer stack
  std::vector<float> h_last;         // [dim] final-position hidden state
  const void* owner = nullptr;       // scorer identity
  uint64_t epoch = 0;                // scorer revision (bumped on hot swap)

  /// Exact heap bytes attributable to this entry. Constant after the
  /// initial encode: KvCache buffers are allocated at full capacity and
  /// `items` is reserved to the window capacity, so appends never realloc —
  /// the session store's byte accounting relies on this.
  int64_t bytes() const {
    int64_t b = static_cast<int64_t>(sizeof(SessionState));
    b += static_cast<int64_t>(items.capacity() * sizeof(int32_t));
    b += static_cast<int64_t>(h_last.capacity() * sizeof(float));
    for (const nn::KvCache& c : stacks) b += c.bytes();
    return b;
  }
};

/// Implemented by models that support incremental session scoring. All
/// methods are scoring-path calls: the serving layer invokes them under the
/// process-wide ScoreSerializer() lock, never concurrently.
class SessionScorer {
 public:
  virtual ~SessionScorer() = default;

  /// True when this scorer can serve the session path (a delegating scorer
  /// may wrap inner rankers that cannot).
  virtual bool session_supported() const { return true; }

  /// Model revision: entries tagged with a different epoch are stale. The
  /// serving layer reads this BEFORE encoding, so a concurrent model flip
  /// can only yield a conservatively-invalidated entry, never a stale one
  /// served as fresh.
  virtual uint64_t session_epoch() const { return 0; }

  /// Maximum window length (the model's max_len).
  virtual int64_t session_capacity() const = 0;

  /// Hidden dimension of SessionState::h_last.
  virtual int64_t session_dim() const = 0;

  /// Cold path: encodes `window` (1 <= size <= session_capacity()) from
  /// scratch, filling `state` (items, stacks, h_last). Does not touch
  /// owner/epoch — the caller tags them.
  virtual void EncodeSession(const std::vector<int32_t>& window,
                             SessionState& state) = 0;

  /// Warm path: appends one item against the cached K/V, updating items and
  /// h_last. Requires state.items.size() < session_capacity(). Bit-identical
  /// to EncodeSession over the extended window.
  virtual void AppendSession(int32_t item, SessionState& state) = 0;

  /// Scores `rows` session hidden vectors (`hidden` is [rows, dim]
  /// row-major) through the fused top-k path. `opt.exclude`, when set, must
  /// have one entry per row (the serving layer passes full histories, not
  /// windows, so long-seen items stay excluded).
  virtual std::vector<TopKList> ScoreSessionHidden(
      const std::vector<float>& hidden, int64_t rows,
      const TopKOptions& opt) = 0;
};

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_SESSION_H_
