// Leave-one-out ranking evaluation over the full item set (paper §V.A).
//
// Models implement the minimal `Ranker` interface; the evaluator batches
// users, asks the model to score every item, and accumulates HR/NDCG for the
// held-out target of each user.
#ifndef MSGCL_EVAL_EVALUATOR_H_
#define MSGCL_EVAL_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "tensor/arena.h"
#include "data/batching.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/topk.h"
#include "obs/profiler.h"
#include "parallel/parallel.h"

namespace msgcl {
namespace eval {

/// Minimal scoring interface every recommender implements.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Human-readable model name (Table II row label).
  virtual std::string name() const = 0;

  /// Scores all items for each sequence in the batch.
  ///
  /// `batch.inputs` holds B left-padded sequences of length T. The result
  /// must have B * (num_items + 1) entries; entry [b * (N+1) + i] is the
  /// score of item id i for row b (index 0 is padding and is ignored).
  virtual std::vector<float> ScoreAll(const data::Batch& batch) = 0;

  /// Fused score→top-k: one descending (score, then ascending item id) list
  /// of min(k, #non-excluded items) per batch row.
  ///
  /// Contract: the result is bit-identical to scoring via ScoreAll and
  /// selecting under the same total order — backends that override this with
  /// a fused path (e.g. SasBackbone's blocked dot + bounded heap, which
  /// never materializes the B×(N+1) logits) are tested against the fallback
  /// at several thread counts. The default implementation is that reference:
  /// ScoreAll + per-row bounded selection.
  virtual std::vector<TopKList> ScoreTopK(const data::Batch& batch,
                                          const TopKOptions& opt) {
    MSGCL_CHECK_GT(batch.batch_size, 0);
    opt.ValidateOrThrow();
    std::vector<float> scores;
    {
      MSGCL_OBS_SCOPE("eval.score_all");
      scores = ScoreAll(batch);
    }
    const int64_t B = batch.batch_size;
    MSGCL_CHECK_EQ(static_cast<int64_t>(scores.size()) % B, 0);
    const int64_t N1 = static_cast<int64_t>(scores.size()) / B;
    MSGCL_CHECK_GT(N1, 1);
    if (opt.num_items > 0) MSGCL_CHECK_EQ(N1, static_cast<int64_t>(opt.num_items) + 1);
    const int32_t num_items = static_cast<int32_t>(N1 - 1);
    // Honor an id-range restriction (intra-model sharding, DESIGN.md §14):
    // the scores are still computed for the full catalogue, but only ids in
    // [first, last] become candidates.
    const int32_t first = opt.has_item_range() ? opt.first_item : 1;
    const int32_t last =
        opt.has_item_range() ? std::min(opt.last_item, num_items) : num_items;
    std::vector<ExcludeSet> exclude = BuildExcludeSets(batch, opt);
    std::vector<TopKList> out(B);
    // Rows are independent (disjoint writes), so the loop is bitwise
    // thread-invariant under parallel::For's determinism contract.
    parallel::For(0, B, 1, [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) {
        out[b] = SelectTopKFromRow(scores.data() + b * N1, first, last, opt.k, exclude[b]);
      }
    });
    return out;
  }

  /// Convenience overload: top-k with only the seen-item filter toggled.
  std::vector<TopKList> ScoreTopK(const data::Batch& batch, int64_t k,
                                  bool exclude_seen) {
    TopKOptions opt;
    opt.k = k;
    opt.exclude_seen = exclude_seen;
    return ScoreTopK(batch, opt);
  }
};

/// Which held-out interaction to rank.
enum class Split { kValidation, kTest };

/// Evaluator configuration.
struct EvalConfig {
  int64_t max_len = 50;
  int64_t batch_size = 128;
  std::vector<int> cutoffs = {5, 10};
  /// How equal-scored items rank against the held-out target (see TiePolicy;
  /// kOptimistic reproduces the historical strictly-greater behavior).
  TiePolicy tie_policy = TiePolicy::kOptimistic;
};

/// Runs the paper's protocol: for each user, rank the held-out item among
/// all items and accumulate HR@k / NDCG@k.
///
/// Rows whose target score collides with another item's are counted into the
/// "eval.score_ties.rows" counter; when more than 1% of ranked rows are
/// contested, "eval.score_ties.degenerate_runs" is bumped so near-constant
/// scorers (whose metrics depend entirely on EvalConfig::tie_policy) are
/// visible in the metrics snapshot instead of silently inflating HR.
inline Metrics Evaluate(Ranker& model, const data::SequenceDataset& ds, Split split,
                        const EvalConfig& config = {}) {
  const int32_t U = ds.num_users();
  std::vector<std::vector<int32_t>> inputs(U);
  const std::vector<int32_t>& targets =
      split == Split::kValidation ? ds.valid_targets : ds.test_targets;
  for (int32_t u = 0; u < U; ++u) {
    inputs[u] = split == Split::kValidation ? ds.ValidInput(u) : ds.TestInput(u);
  }

  MetricAccumulator acc(config.cutoffs);
  int64_t tied_rows = 0;
  const int64_t N1 = static_cast<int64_t>(ds.num_items) + 1;
  // Forward-pass temporaries reuse one arena across batches; the first batch
  // stays on the heap (arena.h "first batch on heap") so anything a model
  // lazily builds on first use cannot pin a slab. `scores` is a plain
  // heap vector, so nothing below escapes the scope.
  arena::Arena eval_arena;
  bool first_batch = true;
  for (int32_t start = 0; start < U; start += static_cast<int32_t>(config.batch_size)) {
    std::vector<int32_t> rows;
    for (int32_t u = start; u < std::min<int32_t>(U, start + config.batch_size); ++u) {
      rows.push_back(u);
    }
    data::Batch batch = data::MakeEvalBatch(inputs, rows, config.max_len);
    std::vector<float> scores;
    {
      MSGCL_OBS_SCOPE("eval.score_all");
      if (first_batch) {
        scores = model.ScoreAll(batch);
        first_batch = false;
      } else {
        arena::ArenaScope arena_scope(&eval_arena);
        scores = model.ScoreAll(batch);
      }
    }
    eval_arena.Reset();
    MSGCL_OBS_COUNT("eval.users_ranked", batch.batch_size);
    MSGCL_CHECK_EQ(static_cast<int64_t>(scores.size()), batch.batch_size * N1);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const RankResult r = RankOfTargetDetailed(scores.data() + b * N1,
                                                static_cast<size_t>(N1),
                                                targets[rows[b]], config.tie_policy);
      if (r.num_tied > 0) ++tied_rows;
      acc.Add(r.rank);
    }
  }
  MSGCL_OBS_COUNT("eval.score_ties.rows", tied_rows);
  if (acc.count() > 0 && tied_rows * 100 > acc.count()) {
    MSGCL_OBS_COUNT("eval.score_ties.degenerate_runs", 1);
  }
  Metrics m;
  m.hr5 = acc.Hr(5);
  m.hr10 = acc.Hr(10);
  m.ndcg5 = acc.Ndcg(5);
  m.ndcg10 = acc.Ndcg(10);
  m.mrr = acc.Mrr();
  return m;
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_EVALUATOR_H_
