// Leave-one-out ranking evaluation over the full item set (paper §V.A).
//
// Models implement the minimal `Ranker` interface; the evaluator batches
// users, asks the model to score every item, and accumulates HR/NDCG for the
// held-out target of each user.
#ifndef MSGCL_EVAL_EVALUATOR_H_
#define MSGCL_EVAL_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "data/batching.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "obs/profiler.h"

namespace msgcl {
namespace eval {

/// Minimal scoring interface every recommender implements.
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Human-readable model name (Table II row label).
  virtual std::string name() const = 0;

  /// Scores all items for each sequence in the batch.
  ///
  /// `batch.inputs` holds B left-padded sequences of length T. The result
  /// must have B * (num_items + 1) entries; entry [b * (N+1) + i] is the
  /// score of item id i for row b (index 0 is padding and is ignored).
  virtual std::vector<float> ScoreAll(const data::Batch& batch) = 0;
};

/// Which held-out interaction to rank.
enum class Split { kValidation, kTest };

/// Evaluator configuration.
struct EvalConfig {
  int64_t max_len = 50;
  int64_t batch_size = 128;
  std::vector<int> cutoffs = {5, 10};
};

/// Runs the paper's protocol: for each user, rank the held-out item among
/// all items and accumulate HR@k / NDCG@k.
inline Metrics Evaluate(Ranker& model, const data::SequenceDataset& ds, Split split,
                        const EvalConfig& config = {}) {
  const int32_t U = ds.num_users();
  std::vector<std::vector<int32_t>> inputs(U);
  const std::vector<int32_t>& targets =
      split == Split::kValidation ? ds.valid_targets : ds.test_targets;
  for (int32_t u = 0; u < U; ++u) {
    inputs[u] = split == Split::kValidation ? ds.ValidInput(u) : ds.TestInput(u);
  }

  MetricAccumulator acc(config.cutoffs);
  const int64_t N1 = static_cast<int64_t>(ds.num_items) + 1;
  for (int32_t start = 0; start < U; start += static_cast<int32_t>(config.batch_size)) {
    std::vector<int32_t> rows;
    for (int32_t u = start; u < std::min<int32_t>(U, start + config.batch_size); ++u) {
      rows.push_back(u);
    }
    data::Batch batch = data::MakeEvalBatch(inputs, rows, config.max_len);
    std::vector<float> scores;
    {
      MSGCL_OBS_SCOPE("eval.score_all");
      scores = model.ScoreAll(batch);
    }
    MSGCL_OBS_COUNT("eval.users_ranked", batch.batch_size);
    MSGCL_CHECK_EQ(static_cast<int64_t>(scores.size()), batch.batch_size * N1);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      std::vector<float> row(scores.begin() + b * N1, scores.begin() + (b + 1) * N1);
      acc.Add(RankOfTarget(row, targets[rows[b]]));
    }
  }
  Metrics m;
  m.hr5 = acc.Hr(5);
  m.hr10 = acc.Hr(10);
  m.ndcg5 = acc.Ndcg(5);
  m.ndcg10 = acc.Ndcg(10);
  m.mrr = acc.Mrr();
  return m;
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_EVALUATOR_H_
