// Umbrella header for the evaluation substrate.
#ifndef MSGCL_EVAL_EVAL_H_
#define MSGCL_EVAL_EVAL_H_

#include "eval/analysis.h"         // IWYU pragma: export
#include "eval/embedding_stats.h"  // IWYU pragma: export
#include "eval/evaluator.h"        // IWYU pragma: export
#include "eval/metrics.h"          // IWYU pragma: export
#include "eval/recommend.h"        // IWYU pragma: export
#include "eval/session.h"          // IWYU pragma: export
#include "eval/topk.h"             // IWYU pragma: export

#endif  // MSGCL_EVAL_EVAL_H_
