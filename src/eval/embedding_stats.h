// Quantitative item-embedding distribution statistics — the substitution for
// the paper's Fig. 6 t-SNE scatter (see DESIGN.md §1, substitution 3).
//
// Fig. 6's qualitative claim: SASRec's item embeddings collapse into a
// "narrow cone" while Meta-SGCL's spread more uniformly. We quantify that
// with four statistics over the learned embedding matrix:
//   * mean pairwise cosine similarity (cone-ness: higher = narrower cone)
//   * uniformity loss log E exp(-2 ||z_i - z_j||^2) on normalised embeddings
//     (Wang & Isola 2020; lower = more uniform)
//   * singular-value entropy of the embedding matrix, normalised to [0, 1]
//     (higher = variance spread over more directions)
//   * mean embedding norm (scale context for the above)
#ifndef MSGCL_EVAL_EMBEDDING_STATS_H_
#define MSGCL_EVAL_EMBEDDING_STATS_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace msgcl {
namespace eval {

/// Distribution statistics of an item-embedding matrix.
struct EmbeddingStats {
  double mean_cosine = 0.0;     // cone-ness; ~0 for isotropic embeddings
  double uniformity = 0.0;      // Wang-Isola uniformity loss (lower = better)
  double sv_entropy = 0.0;      // normalised singular-value entropy in [0, 1]
  double mean_norm = 0.0;

  std::string ToString() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "mean_cos=%.4f uniformity=%.4f sv_entropy=%.4f mean_norm=%.4f",
                  mean_cosine, uniformity, sv_entropy, mean_norm);
    return buf;
  }
};

namespace internal {

/// Eigenvalues of a small symmetric matrix via cyclic Jacobi rotations.
inline std::vector<double> SymmetricEigenvalues(std::vector<double> a, int n,
                                                int sweeps = 50) {
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    }
    if (off < 1e-18) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-15) continue;
        const double theta = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = a[k * n + p], akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a[p * n + k], aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (int i = 0; i < n; ++i) eig[i] = a[i * n + i];
  return eig;
}

}  // namespace internal

/// Computes EmbeddingStats for `table` ([num_items+1, d]; row 0 = padding is
/// skipped). Pairwise statistics are estimated from `sample_pairs` random
/// pairs for O(1) memory.
inline EmbeddingStats ComputeEmbeddingStats(const Tensor& table, Rng& rng,
                                            int64_t sample_pairs = 20000) {
  MSGCL_CHECK_EQ(table.ndim(), 2);
  const int64_t rows = table.dim(0);
  const int64_t d = table.dim(1);
  MSGCL_CHECK_GT(rows, 2);
  const int64_t n = rows - 1;  // skip padding row 0
  const auto& e = table.data();

  EmbeddingStats stats;

  // Mean norm.
  std::vector<double> norms(n);
  for (int64_t i = 0; i < n; ++i) {
    double sq = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double v = e[(i + 1) * d + j];
      sq += v * v;
    }
    norms[i] = std::sqrt(sq);
    stats.mean_norm += norms[i];
  }
  stats.mean_norm /= static_cast<double>(n);

  // Sampled pairwise cosine and uniformity.
  double cos_sum = 0.0;
  double unif_sum = 0.0;
  for (int64_t s = 0; s < sample_pairs; ++s) {
    const int64_t i = static_cast<int64_t>(rng.UniformInt(n));
    int64_t j = static_cast<int64_t>(rng.UniformInt(n - 1));
    if (j >= i) ++j;
    double dot = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      dot += static_cast<double>(e[(i + 1) * d + k]) * e[(j + 1) * d + k];
    }
    const double denom = std::max(norms[i] * norms[j], 1e-12);
    const double c = dot / denom;
    cos_sum += c;
    // On unit-normalised embeddings ||zi - zj||^2 = 2 - 2 cos.
    unif_sum += std::exp(-2.0 * (2.0 - 2.0 * c));
  }
  stats.mean_cosine = cos_sum / static_cast<double>(sample_pairs);
  stats.uniformity = std::log(unif_sum / static_cast<double>(sample_pairs));

  // Singular-value entropy from the d x d covariance (mean-centred).
  std::vector<double> mean(d, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) mean[j] += e[(i + 1) * d + j];
  }
  for (auto& m : mean) m /= static_cast<double>(n);
  std::vector<double> cov(d * d, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t a = 0; a < d; ++a) {
      const double va = e[(i + 1) * d + a] - mean[a];
      for (int64_t b = a; b < d; ++b) {
        cov[a * d + b] += va * (e[(i + 1) * d + b] - mean[b]);
      }
    }
  }
  for (int64_t a = 0; a < d; ++a) {
    for (int64_t b = 0; b < a; ++b) cov[a * d + b] = cov[b * d + a];
  }
  auto eig = internal::SymmetricEigenvalues(std::move(cov), static_cast<int>(d));
  double total = 0.0;
  for (double& v : eig) {
    v = std::max(v, 0.0);
    total += v;
  }
  double entropy = 0.0;
  if (total > 0.0) {
    for (double v : eig) {
      if (v <= 0.0) continue;
      const double p = v / total;
      entropy -= p * std::log(p);
    }
    entropy /= std::log(static_cast<double>(d));  // normalise to [0, 1]
  }
  stats.sv_entropy = entropy;
  return stats;
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_EMBEDDING_STATS_H_
