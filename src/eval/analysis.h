// Deeper evaluation utilities beyond the paper's headline protocol:
//  * sampled-negative evaluation (the classic SASRec/BERT4Rec protocol:
//    rank the target against N sampled negatives instead of all items);
//  * paired bootstrap significance testing between two rankers;
//  * popularity-stratified metrics (who wins on head vs tail items).
#ifndef MSGCL_EVAL_ANALYSIS_H_
#define MSGCL_EVAL_ANALYSIS_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "data/batching.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "tensor/rng.h"

namespace msgcl {
namespace eval {

/// Sampled-negative evaluation: for each user, rank the held-out target
/// against `num_negatives` items sampled uniformly from the catalogue,
/// excluding the user's history (the SASRec/BERT4Rec "1 + 100" protocol).
/// Less faithful than full ranking (the paper uses full ranking) but much
/// cheaper at real catalogue sizes and common in baselines' original papers.
inline Metrics EvaluateSampled(Ranker& model, const data::SequenceDataset& ds, Split split,
                               int32_t num_negatives, Rng& rng,
                               const EvalConfig& config = {}) {
  const int32_t U = ds.num_users();
  const std::vector<int32_t>& targets =
      split == Split::kValidation ? ds.valid_targets : ds.test_targets;
  std::vector<std::vector<int32_t>> inputs(U);
  for (int32_t u = 0; u < U; ++u) {
    inputs[u] = split == Split::kValidation ? ds.ValidInput(u) : ds.TestInput(u);
  }

  MetricAccumulator acc(config.cutoffs);
  const int64_t N1 = static_cast<int64_t>(ds.num_items) + 1;
  for (int32_t start = 0; start < U; start += static_cast<int32_t>(config.batch_size)) {
    std::vector<int32_t> rows;
    for (int32_t u = start; u < std::min<int32_t>(U, start + config.batch_size); ++u) {
      rows.push_back(u);
    }
    data::Batch batch = data::MakeEvalBatch(inputs, rows, config.max_len);
    std::vector<float> scores = model.ScoreAll(batch);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const int32_t u = rows[b];
      std::unordered_set<int32_t> seen(inputs[u].begin(), inputs[u].end());
      seen.insert(targets[u]);
      const float* row = scores.data() + b * N1;
      const float target_score = row[targets[u]];
      int64_t rank = 0;
      for (int32_t n = 0; n < num_negatives; ++n) {
        int32_t item;
        do {
          item = 1 + static_cast<int32_t>(rng.UniformInt(ds.num_items));
        } while (seen.count(item) > 0 && seen.size() < static_cast<size_t>(ds.num_items));
        if (row[item] > target_score) ++rank;
      }
      acc.Add(rank);
    }
  }
  Metrics m;
  m.hr5 = acc.Hr(5);
  m.hr10 = acc.Hr(10);
  m.ndcg5 = acc.Ndcg(5);
  m.ndcg10 = acc.Ndcg(10);
  m.mrr = acc.Mrr();
  return m;
}

/// Result of a paired bootstrap comparison.
struct BootstrapResult {
  double mean_a = 0.0;        // mean per-user NDCG@10 of model A
  double mean_b = 0.0;        // mean per-user NDCG@10 of model B
  double p_value = 1.0;       // P(B >= A under resampling) if A leads, sym.
  int64_t samples = 0;
};

/// Per-user NDCG@10 contributions for one ranker.
inline std::vector<double> PerUserNdcg10(Ranker& model, const data::SequenceDataset& ds,
                                         Split split, const EvalConfig& config = {}) {
  const int32_t U = ds.num_users();
  const std::vector<int32_t>& targets =
      split == Split::kValidation ? ds.valid_targets : ds.test_targets;
  std::vector<std::vector<int32_t>> inputs(U);
  for (int32_t u = 0; u < U; ++u) {
    inputs[u] = split == Split::kValidation ? ds.ValidInput(u) : ds.TestInput(u);
  }
  std::vector<double> out(U, 0.0);
  const int64_t N1 = static_cast<int64_t>(ds.num_items) + 1;
  for (int32_t start = 0; start < U; start += static_cast<int32_t>(config.batch_size)) {
    std::vector<int32_t> rows;
    for (int32_t u = start; u < std::min<int32_t>(U, start + config.batch_size); ++u) {
      rows.push_back(u);
    }
    data::Batch batch = data::MakeEvalBatch(inputs, rows, config.max_len);
    std::vector<float> scores = model.ScoreAll(batch);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      out[rows[b]] = NdcgAt(RankOfTarget(scores.data() + b * N1, static_cast<size_t>(N1),
                                         targets[rows[b]], config.tie_policy),
                            10);
    }
  }
  return out;
}

/// Paired bootstrap over users: resamples user indices with replacement and
/// counts how often the trailing model matches/overtakes the leading one.
/// A small p_value means the observed gap is unlikely to be resampling noise.
inline BootstrapResult PairedBootstrap(const std::vector<double>& per_user_a,
                                       const std::vector<double>& per_user_b, Rng& rng,
                                       int64_t resamples = 2000) {
  MSGCL_CHECK_EQ(per_user_a.size(), per_user_b.size());
  MSGCL_CHECK_GT(per_user_a.size(), 0u);
  const size_t n = per_user_a.size();
  BootstrapResult r;
  r.samples = resamples;
  for (size_t i = 0; i < n; ++i) {
    r.mean_a += per_user_a[i];
    r.mean_b += per_user_b[i];
  }
  r.mean_a /= static_cast<double>(n);
  r.mean_b /= static_cast<double>(n);
  const bool a_leads = r.mean_a >= r.mean_b;
  int64_t flips = 0;
  for (int64_t s = 0; s < resamples; ++s) {
    double da = 0.0, db = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const size_t j = rng.UniformInt(n);
      da += per_user_a[j];
      db += per_user_b[j];
    }
    if (a_leads ? db >= da : da >= db) ++flips;
  }
  r.p_value = static_cast<double>(flips) / static_cast<double>(resamples);
  return r;
}

/// HR@10 stratified by item popularity: users are bucketed by how frequent
/// their held-out target item is in the *training* data. Self-supervised
/// regularisation is expected to help most on tail items.
struct PopularityStrata {
  double head_hr10 = 0.0;  // targets in the most popular third
  double mid_hr10 = 0.0;
  double tail_hr10 = 0.0;
  int64_t head_n = 0, mid_n = 0, tail_n = 0;
};

inline PopularityStrata PopularityStratifiedHr10(Ranker& model,
                                                 const data::SequenceDataset& ds,
                                                 Split split,
                                                 const EvalConfig& config = {}) {
  // Item frequency from training sequences.
  std::vector<int64_t> freq(ds.num_items + 1, 0);
  for (const auto& s : ds.train_seqs) {
    for (int32_t it : s) freq[it]++;
  }
  // Thirds by frequency rank.
  std::vector<int32_t> items(ds.num_items);
  std::iota(items.begin(), items.end(), 1);
  std::sort(items.begin(), items.end(), [&](int32_t a, int32_t b) {
    if (freq[a] != freq[b]) return freq[a] > freq[b];
    return a < b;  // deterministic tie-break
  });
  std::vector<int> bucket(ds.num_items + 1, 2);
  for (size_t i = 0; i < items.size(); ++i) {
    bucket[items[i]] = static_cast<int>(i * 3 / items.size());  // 0=head, 2=tail
  }

  const std::vector<int32_t>& targets =
      split == Split::kValidation ? ds.valid_targets : ds.test_targets;
  std::vector<std::vector<int32_t>> inputs(ds.num_users());
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    inputs[u] = split == Split::kValidation ? ds.ValidInput(u) : ds.TestInput(u);
  }
  double hits[3] = {0, 0, 0};
  int64_t counts[3] = {0, 0, 0};
  const int64_t N1 = static_cast<int64_t>(ds.num_items) + 1;
  for (int32_t start = 0; start < ds.num_users();
       start += static_cast<int32_t>(config.batch_size)) {
    std::vector<int32_t> rows;
    for (int32_t u = start;
         u < std::min<int32_t>(ds.num_users(), start + config.batch_size); ++u) {
      rows.push_back(u);
    }
    data::Batch batch = data::MakeEvalBatch(inputs, rows, config.max_len);
    std::vector<float> scores = model.ScoreAll(batch);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const int32_t t = targets[rows[b]];
      const int bk = bucket[t];
      hits[bk] += HitAt(RankOfTarget(scores.data() + b * N1, static_cast<size_t>(N1), t,
                                     config.tie_policy),
                        10);
      counts[bk]++;
    }
  }
  PopularityStrata out;
  out.head_n = counts[0];
  out.mid_n = counts[1];
  out.tail_n = counts[2];
  out.head_hr10 = counts[0] ? hits[0] / counts[0] : 0.0;
  out.mid_hr10 = counts[1] ? hits[1] / counts[1] : 0.0;
  out.tail_hr10 = counts[2] ? hits[2] / counts[2] : 0.0;
  return out;
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_ANALYSIS_H_
