// Convenience top-K recommendation API on top of the Ranker interface —
// what a downstream application calls at serving time. Both entry points are
// thin shells over Ranker::ScoreTopK, so single-user, batch, and the
// micro-batched serving path (src/serve/) share one selection code path.
#ifndef MSGCL_EVAL_RECOMMEND_H_
#define MSGCL_EVAL_RECOMMEND_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/batching.h"
#include "eval/evaluator.h"
#include "eval/topk.h"

namespace msgcl {
namespace eval {

/// One scored recommendation (alias of the shared top-k element type).
using Recommendation = ScoredItem;

/// Top-K recommendation options.
struct RecommendOptions {
  int64_t k = 10;
  int64_t max_len = 50;       // history window fed to the model
  bool exclude_seen = true;   // drop items already in the (full) history
  int64_t batch_size = 256;   // histories scored per model call (batch variant)
};

namespace internal {

/// Scores `rows` of `histories` in one model call and returns per-row top-K.
/// Seen-item exclusion uses the FULL history, not just the max_len window the
/// model sees, so long-history users never get re-recommended old items.
inline std::vector<TopKList> RecommendRows(Ranker& model,
                                           const std::vector<std::vector<int32_t>>& histories,
                                           const std::vector<int32_t>& rows,
                                           int32_t num_items, const RecommendOptions& opt) {
  MSGCL_CHECK_GT(opt.k, 0);
  data::Batch batch = data::MakeEvalBatch(histories, rows, opt.max_len);
  TopKOptions topk;
  topk.k = opt.k;
  topk.num_items = num_items;
  std::vector<std::vector<int32_t>> exclude;
  if (opt.exclude_seen) {
    exclude.reserve(rows.size());
    for (const int32_t u : rows) exclude.push_back(histories[u]);
    topk.exclude = &exclude;
  }
  return model.ScoreTopK(batch, topk);
}

}  // namespace internal

/// Ranks all items for one user history and returns the top K.
inline std::vector<Recommendation> RecommendTopK(Ranker& model,
                                                 const std::vector<int32_t>& history,
                                                 int32_t num_items,
                                                 const RecommendOptions& opt = {}) {
  return internal::RecommendRows(model, {history}, {0}, num_items, opt)[0];
}

/// Batched variant: one top-K list per history, scored in chunks of
/// `opt.batch_size` histories so the model sees whole batches at once.
inline std::vector<std::vector<Recommendation>> RecommendTopKBatch(
    Ranker& model, const std::vector<std::vector<int32_t>>& histories, int32_t num_items,
    const RecommendOptions& opt = {}) {
  MSGCL_CHECK_GT(opt.batch_size, 0);
  std::vector<std::vector<Recommendation>> out(histories.size());
  const size_t chunk = static_cast<size_t>(opt.batch_size);
  for (size_t start = 0; start < histories.size(); start += chunk) {
    std::vector<int32_t> rows;
    for (size_t u = start; u < std::min(histories.size(), start + chunk); ++u) {
      rows.push_back(static_cast<int32_t>(u));
    }
    std::vector<TopKList> lists =
        internal::RecommendRows(model, histories, rows, num_items, opt);
    for (size_t b = 0; b < rows.size(); ++b) out[rows[b]] = std::move(lists[b]);
  }
  return out;
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_RECOMMEND_H_
