// Convenience top-K recommendation API on top of the Ranker interface —
// what a downstream application calls at serving time.
#ifndef MSGCL_EVAL_RECOMMEND_H_
#define MSGCL_EVAL_RECOMMEND_H_

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "data/batching.h"
#include "eval/evaluator.h"

namespace msgcl {
namespace eval {

/// One scored recommendation.
struct Recommendation {
  int32_t item = 0;
  float score = 0.0f;
};

/// Top-K recommendation options.
struct RecommendOptions {
  int64_t k = 10;
  int64_t max_len = 50;          // history window fed to the model
  bool exclude_seen = true;      // drop items already in the history
};

/// Ranks all items for one user history and returns the top K.
inline std::vector<Recommendation> RecommendTopK(Ranker& model,
                                                 const std::vector<int32_t>& history,
                                                 int32_t num_items,
                                                 const RecommendOptions& opt = {}) {
  MSGCL_CHECK_GT(opt.k, 0);
  data::Batch batch = data::MakeEvalBatch({history}, {0}, opt.max_len);
  std::vector<float> scores = model.ScoreAll(batch);
  MSGCL_CHECK_EQ(static_cast<int64_t>(scores.size()), num_items + 1);

  std::unordered_set<int32_t> seen;
  if (opt.exclude_seen) seen.insert(history.begin(), history.end());

  std::vector<Recommendation> candidates;
  candidates.reserve(num_items);
  for (int32_t i = 1; i <= num_items; ++i) {
    if (opt.exclude_seen && seen.count(i)) continue;
    candidates.push_back({i, scores[i]});
  }
  const int64_t k = std::min<int64_t>(opt.k, static_cast<int64_t>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + k, candidates.end(),
                    [](const Recommendation& a, const Recommendation& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.item < b.item;  // deterministic tie-break
                    });
  candidates.resize(k);
  return candidates;
}

/// Batched variant: one top-K list per history. More efficient than calling
/// RecommendTopK per user because the model scores the whole batch at once.
inline std::vector<std::vector<Recommendation>> RecommendTopKBatch(
    Ranker& model, const std::vector<std::vector<int32_t>>& histories, int32_t num_items,
    const RecommendOptions& opt = {}) {
  std::vector<std::vector<Recommendation>> out(histories.size());
  const int64_t N1 = num_items + 1;
  for (size_t start = 0; start < histories.size(); start += 256) {
    std::vector<int32_t> rows;
    for (size_t u = start; u < std::min(histories.size(), start + 256); ++u) {
      rows.push_back(static_cast<int32_t>(u));
    }
    data::Batch batch = data::MakeEvalBatch(histories, rows, opt.max_len);
    std::vector<float> scores = model.ScoreAll(batch);
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const int32_t u = rows[b];
      std::unordered_set<int32_t> seen;
      if (opt.exclude_seen) seen.insert(histories[u].begin(), histories[u].end());
      std::vector<Recommendation> candidates;
      candidates.reserve(num_items);
      for (int32_t i = 1; i <= num_items; ++i) {
        if (opt.exclude_seen && seen.count(i)) continue;
        candidates.push_back({i, scores[b * N1 + i]});
      }
      const int64_t k = std::min<int64_t>(opt.k, static_cast<int64_t>(candidates.size()));
      std::partial_sort(candidates.begin(), candidates.begin() + k, candidates.end(),
                        [](const Recommendation& a, const Recommendation& b) {
                          if (a.score != b.score) return a.score > b.score;
                          return a.item < b.item;
                        });
      candidates.resize(k);
      out[u] = std::move(candidates);
    }
  }
  return out;
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_RECOMMEND_H_
