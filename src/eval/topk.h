// Shared top-K selection for the ranking/serving layer.
//
// One total order governs every top-K list in the repo: higher score first,
// lower item id on equal scores. Because the order is total, the top-K *set*
// is unique, so any correct selector (bounded heap here, partial_sort in the
// reference path) returns bit-identical (item, score) lists — the invariant
// the serving subsystem's fused path is tested against (DESIGN.md §9).
#ifndef MSGCL_EVAL_TOPK_H_
#define MSGCL_EVAL_TOPK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "data/batching.h"
#include "tensor/macros.h"
#include "tensor/status.h"

namespace msgcl {
namespace eval {

/// One scored item of a top-K list.
struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;

  friend bool operator==(const ScoredItem& a, const ScoredItem& b) {
    return a.item == b.item && a.score == b.score;
  }
};

/// A descending top-K list for one batch row.
using TopKList = std::vector<ScoredItem>;

/// The repo-wide recommendation order: score descending, item id ascending,
/// with NaN ordered strictly below every non-NaN score.
///
/// The NaN clause is load-bearing: under the naive `a.score != b.score`
/// comparator a NaN compares "equivalent" to every other score (all float
/// comparisons involving NaN are false), which breaks transitivity of
/// equivalence — NaN≡5 and NaN≡3 but 5≢3 — so std::sort_heap in
/// BoundedTopK::Take is handed a non-strict-weak-ordering and its behavior
/// is undefined. Classing NaN below all reals (ties, including NaN-vs-NaN,
/// broken by id) restores a total order over every float bit pattern, which
/// is also what makes the sharded merge exact (DESIGN.md §14).
inline bool BetterScored(const ScoredItem& a, const ScoredItem& b) {
  const bool a_nan = std::isnan(a.score);
  const bool b_nan = std::isnan(b.score);
  if (a_nan || b_nan) {
    if (a_nan != b_nan) return b_nan;  // the non-NaN side wins
  } else if (a.score != b.score) {
    return a.score > b.score;
  }
  return a.item < b.item;
}

/// Options for Ranker::ScoreTopK.
struct TopKOptions {
  int64_t k = 10;
  /// Drop items that appear in the row's (windowed) `batch.inputs`.
  bool exclude_seen = false;
  /// Optional extra per-row exclusions, indexed by batch row; entries need
  /// not be sorted or unique. Non-owning — must outlive the call.
  const std::vector<std::vector<int32_t>>* exclude = nullptr;
  /// Expected catalogue size. When > 0, implementations validate that the
  /// model scores exactly num_items + 1 ids per row.
  int32_t num_items = 0;
  /// Optional contiguous id-range restriction for intra-model sharding
  /// (DESIGN.md §14): when `first_item > 0`, only ids in
  /// [first_item, last_item] are candidates. The default (0, 0) means the
  /// full catalogue 1..num_items. Per-item scores do not depend on the
  /// range (the fused dot is blocked per item), so restricting it and
  /// merging per-shard lists under BetterScored reproduces the unsharded
  /// list bit-for-bit.
  int32_t first_item = 0;
  int32_t last_item = 0;

  bool has_item_range() const { return first_item > 0; }

  /// Typed validation for the serving path (PR 5 convention): rejects the
  /// malformed options an MSGCL_CHECK used to abort on — `k <= 0`, negative
  /// `num_items`, and an inverted or out-of-catalogue item range.
  Status Validate() const {
    if (k <= 0) {
      return Status::InvalidArgument("TopKOptions: k must be > 0");
    }
    if (num_items < 0) {
      return Status::InvalidArgument("TopKOptions: num_items must be >= 0");
    }
    if (first_item < 0 || last_item < 0) {
      return Status::InvalidArgument("TopKOptions: item range must be >= 0");
    }
    if (has_item_range()) {
      if (last_item < first_item) {
        return Status::InvalidArgument("TopKOptions: item range is inverted");
      }
      if (num_items > 0 && last_item > num_items) {
        return Status::InvalidArgument(
            "TopKOptions: item range exceeds the catalogue");
      }
    } else if (last_item != 0) {
      return Status::InvalidArgument(
          "TopKOptions: last_item set without first_item");
    }
    return Status::Ok();
  }

  /// Validate() that reports failure by throwing std::invalid_argument —
  /// ScoreTopK-family entry points cannot return a Status (their result is
  /// the list itself), so they throw and the MicroBatcher converts the
  /// exception back into Status::InvalidArgument for clients.
  void ValidateOrThrow() const {
    const Status s = Validate();
    if (!s.ok()) throw std::invalid_argument(s.message());
  }
};

/// Bounded selector that keeps the best `k` ScoredItems under BetterScored.
/// Push order does not affect the result (the order is total), so callers
/// may stream candidates in any deterministic sequence.
class BoundedTopK {
 public:
  explicit BoundedTopK(int64_t k) : k_(k) { MSGCL_CHECK_GT(k, 0); }

  void Push(int32_t item, float score) {
    const ScoredItem c{item, score};
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.push_back(c);
      std::push_heap(heap_.begin(), heap_.end(), BetterScored);  // worst on top
      return;
    }
    if (BetterScored(c, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), BetterScored);
      heap_.back() = c;
      std::push_heap(heap_.begin(), heap_.end(), BetterScored);
    }
  }

  /// Drains the selector into a descending (BetterScored) list.
  TopKList Take() {
    // sort_heap with BetterScored-as-less yields "ascending" = best first,
    // which is exactly the output order.
    std::sort_heap(heap_.begin(), heap_.end(), BetterScored);
    TopKList out = std::move(heap_);
    heap_.clear();
    return out;
  }

 private:
  int64_t k_;
  TopKList heap_;
};

/// Sorted, deduplicated exclusion list for one row. Lookup is a binary
/// search, so membership tests stay cheap inside the fused scoring loops.
class ExcludeSet {
 public:
  ExcludeSet() = default;

  void Insert(int32_t item) { ids_.push_back(item); }

  void InsertRange(const std::vector<int32_t>& items) {
    ids_.insert(ids_.end(), items.begin(), items.end());
  }

  void Seal() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  bool Contains(int32_t item) const {
    return std::binary_search(ids_.begin(), ids_.end(), item);
  }

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }

 private:
  std::vector<int32_t> ids_;
};

/// Builds the per-row exclusion sets a ScoreTopK implementation must honor:
/// the row's non-padding inputs when `opt.exclude_seen`, merged with
/// `opt.exclude` when present. Shared by the ScoreAll fallback and the fused
/// backbone path so the two can never disagree on exclusion semantics.
inline std::vector<ExcludeSet> BuildExcludeSets(const data::Batch& batch,
                                                const TopKOptions& opt) {
  std::vector<ExcludeSet> sets(batch.batch_size);
  if (opt.exclude != nullptr) {
    MSGCL_CHECK_EQ(static_cast<int64_t>(opt.exclude->size()), batch.batch_size);
  }
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    if (opt.exclude_seen) {
      for (int64_t t = 0; t < batch.seq_len; ++t) {
        const int32_t id = batch.inputs[b * batch.seq_len + t];
        if (id != 0) sets[b].Insert(id);
      }
    }
    if (opt.exclude != nullptr) sets[b].InsertRange((*opt.exclude)[b]);
    sets[b].Seal();
  }
  return sets;
}

/// Selects the top k of items first..last from one dense score row
/// (indexed by item id; slot 0 is padding and ignored), skipping excluded
/// ids. Returns min(k, #candidates) entries in descending BetterScored order.
inline TopKList SelectTopKFromRow(const float* scores, int32_t first, int32_t last,
                                  int64_t k, const ExcludeSet& exclude) {
  BoundedTopK sel(k);
  for (int32_t i = first; i <= last; ++i) {
    if (exclude.Contains(i)) continue;
    sel.Push(i, scores[i]);
  }
  return sel.Take();
}

/// Full-catalogue overload: items 1..num_items.
inline TopKList SelectTopKFromRow(const float* scores, int32_t num_items, int64_t k,
                                  const ExcludeSet& exclude) {
  return SelectTopKFromRow(scores, 1, num_items, k, exclude);
}

/// Exact k-way merge of per-shard top-k lists (DESIGN.md §14).
///
/// Each input list must already be in descending BetterScored order (the
/// output order of BoundedTopK::Take). Because BetterScored is total and
/// shards partition the id space (no duplicates across lists), the merged
/// top-k is exactly the top-k of the union — bit-identical to selecting over
/// the unsharded candidate set in one pass.
inline TopKList MergeTopKLists(const std::vector<const TopKList*>& lists, int64_t k) {
  MSGCL_CHECK_GT(k, 0);
  struct Head {
    const TopKList* list;
    size_t pos;
  };
  std::vector<Head> heads;
  heads.reserve(lists.size());
  for (const TopKList* l : lists) {
    if (l != nullptr && !l->empty()) heads.push_back(Head{l, 0});
  }
  // Max-heap on the current head of each list under BetterScored; "worse"
  // heads sink, so the heap root is always the globally best remaining item.
  const auto head_worse = [](const Head& a, const Head& b) {
    return BetterScored((*b.list)[b.pos], (*a.list)[a.pos]);
  };
  std::make_heap(heads.begin(), heads.end(), head_worse);
  TopKList out;
  out.reserve(static_cast<size_t>(std::min<int64_t>(k, 64)));
  while (!heads.empty() && static_cast<int64_t>(out.size()) < k) {
    std::pop_heap(heads.begin(), heads.end(), head_worse);
    Head& h = heads.back();
    out.push_back((*h.list)[h.pos]);
    if (++h.pos < h.list->size()) {
      std::push_heap(heads.begin(), heads.end(), head_worse);
    } else {
      heads.pop_back();
    }
  }
  return out;
}

/// Convenience overload for callers that own the lists by value.
inline TopKList MergeTopKLists(const std::vector<TopKList>& lists, int64_t k) {
  std::vector<const TopKList*> views;
  views.reserve(lists.size());
  for (const TopKList& l : lists) views.push_back(&l);
  return MergeTopKLists(views, k);
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_TOPK_H_
