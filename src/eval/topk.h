// Shared top-K selection for the ranking/serving layer.
//
// One total order governs every top-K list in the repo: higher score first,
// lower item id on equal scores. Because the order is total, the top-K *set*
// is unique, so any correct selector (bounded heap here, partial_sort in the
// reference path) returns bit-identical (item, score) lists — the invariant
// the serving subsystem's fused path is tested against (DESIGN.md §9).
#ifndef MSGCL_EVAL_TOPK_H_
#define MSGCL_EVAL_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/batching.h"
#include "tensor/macros.h"

namespace msgcl {
namespace eval {

/// One scored item of a top-K list.
struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;

  friend bool operator==(const ScoredItem& a, const ScoredItem& b) {
    return a.item == b.item && a.score == b.score;
  }
};

/// A descending top-K list for one batch row.
using TopKList = std::vector<ScoredItem>;

/// The repo-wide recommendation order: score descending, item id ascending.
inline bool BetterScored(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Options for Ranker::ScoreTopK.
struct TopKOptions {
  int64_t k = 10;
  /// Drop items that appear in the row's (windowed) `batch.inputs`.
  bool exclude_seen = false;
  /// Optional extra per-row exclusions, indexed by batch row; entries need
  /// not be sorted or unique. Non-owning — must outlive the call.
  const std::vector<std::vector<int32_t>>* exclude = nullptr;
  /// Expected catalogue size. When > 0, implementations validate that the
  /// model scores exactly num_items + 1 ids per row.
  int32_t num_items = 0;
};

/// Bounded selector that keeps the best `k` ScoredItems under BetterScored.
/// Push order does not affect the result (the order is total), so callers
/// may stream candidates in any deterministic sequence.
class BoundedTopK {
 public:
  explicit BoundedTopK(int64_t k) : k_(k) { MSGCL_CHECK_GT(k, 0); }

  void Push(int32_t item, float score) {
    const ScoredItem c{item, score};
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.push_back(c);
      std::push_heap(heap_.begin(), heap_.end(), BetterScored);  // worst on top
      return;
    }
    if (BetterScored(c, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), BetterScored);
      heap_.back() = c;
      std::push_heap(heap_.begin(), heap_.end(), BetterScored);
    }
  }

  /// Drains the selector into a descending (BetterScored) list.
  TopKList Take() {
    // sort_heap with BetterScored-as-less yields "ascending" = best first,
    // which is exactly the output order.
    std::sort_heap(heap_.begin(), heap_.end(), BetterScored);
    TopKList out = std::move(heap_);
    heap_.clear();
    return out;
  }

 private:
  int64_t k_;
  TopKList heap_;
};

/// Sorted, deduplicated exclusion list for one row. Lookup is a binary
/// search, so membership tests stay cheap inside the fused scoring loops.
class ExcludeSet {
 public:
  ExcludeSet() = default;

  void Insert(int32_t item) { ids_.push_back(item); }

  void InsertRange(const std::vector<int32_t>& items) {
    ids_.insert(ids_.end(), items.begin(), items.end());
  }

  void Seal() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  bool Contains(int32_t item) const {
    return std::binary_search(ids_.begin(), ids_.end(), item);
  }

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }

 private:
  std::vector<int32_t> ids_;
};

/// Builds the per-row exclusion sets a ScoreTopK implementation must honor:
/// the row's non-padding inputs when `opt.exclude_seen`, merged with
/// `opt.exclude` when present. Shared by the ScoreAll fallback and the fused
/// backbone path so the two can never disagree on exclusion semantics.
inline std::vector<ExcludeSet> BuildExcludeSets(const data::Batch& batch,
                                                const TopKOptions& opt) {
  std::vector<ExcludeSet> sets(batch.batch_size);
  if (opt.exclude != nullptr) {
    MSGCL_CHECK_EQ(static_cast<int64_t>(opt.exclude->size()), batch.batch_size);
  }
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    if (opt.exclude_seen) {
      for (int64_t t = 0; t < batch.seq_len; ++t) {
        const int32_t id = batch.inputs[b * batch.seq_len + t];
        if (id != 0) sets[b].Insert(id);
      }
    }
    if (opt.exclude != nullptr) sets[b].InsertRange((*opt.exclude)[b]);
    sets[b].Seal();
  }
  return sets;
}

/// Selects the top k of items 1..num_items from one dense score row
/// (indexed by item id; slot 0 is padding and ignored), skipping excluded
/// ids. Returns min(k, #candidates) entries in descending BetterScored order.
inline TopKList SelectTopKFromRow(const float* scores, int32_t num_items, int64_t k,
                                  const ExcludeSet& exclude) {
  BoundedTopK sel(k);
  for (int32_t i = 1; i <= num_items; ++i) {
    if (exclude.Contains(i)) continue;
    sel.Push(i, scores[i]);
  }
  return sel.Take();
}

}  // namespace eval
}  // namespace msgcl

#endif  // MSGCL_EVAL_TOPK_H_
