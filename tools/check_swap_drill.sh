#!/usr/bin/env bash
# Hot-swap drill for the validated model rollout path (DESIGN.md §11).
#
# Leg 1 — healthy rollout: serves a request storm through a SwappableRanker
# while 10 checkpoint swaps land mid-flight, then asserts on the JSON report:
#
#   1. errors == 0 and garbage == 0: a hot swap never drops a request or
#      serves a non-finite score — the flip is atomic under load;
#   2. swap_success == 10: every rollout passed the validation gate.
#
# Leg 2 — corrupted rollout: repeats the storm with a truncated source
# checkpoint and asserts every swap is rejected (swap_success == 0) while
# serving stays clean (errors == 0, garbage == 0, degraded == 0): a bad
# artifact never reaches the serving path, not even as degraded responses.
#
# Usage: tools/check_swap_drill.sh [msgcl_bin|build_dir] [swaps]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="${1:-build/tools/msgcl}"
if [[ -d "$BIN" ]]; then BIN="$BIN/tools/msgcl"; fi
SWAPS="${2:-10}"

if [[ ! -x "$BIN" ]]; then
  echo "== building msgcl_cli"
  cmake --build "$(dirname "$(dirname "$BIN")")" --target msgcl_cli -j "$(nproc)" >/dev/null
fi

d=$(mktemp -d); trap 'rm -rf "$d"' EXIT

field() { sed -n "s/.*\"$2\": *\\([0-9.eE+-]*\\).*/\\1/p" "$1" | head -1; }

echo "== swap drill leg 1: $SWAPS hot swaps under load"
"$BIN" serve-bench --preset=tiny --model=SASRec --max_len=12 --dim=16 \
  --swaps="$SWAPS" --swap_interval_us=5000 --swap_ckpt="$d/src.ckpt" \
  --requests=1500 --clients=4 --max_batch=8 --max_wait_us=200 \
  --json="$d/swap.json"

errors=$(field "$d/swap.json" errors)
garbage=$(field "$d/swap.json" garbage)
success=$(field "$d/swap.json" swap_success)
echo "== errors=$errors garbage=$garbage swap_success=$success (require 0/0/$SWAPS)"
if [[ "$errors" != "0" || "$garbage" != "0" || "$success" != "$SWAPS" ]]; then
  echo "FAIL: hot swaps under load dropped requests or failed validation" >&2
  exit 1
fi

echo "== swap drill leg 2: corrupted (truncated) rollout source"
"$BIN" serve-bench --preset=tiny --model=SASRec --max_len=12 --dim=16 \
  --swaps=3 --swap_interval_us=5000 --swap_corrupt=truncate \
  --swap_ckpt="$d/bad.ckpt" \
  --requests=600 --clients=4 --max_batch=8 --max_wait_us=200 \
  --json="$d/corrupt.json"

errors=$(field "$d/corrupt.json" errors)
garbage=$(field "$d/corrupt.json" garbage)
degraded=$(field "$d/corrupt.json" degraded)
success=$(field "$d/corrupt.json" swap_success)
rejected=$(field "$d/corrupt.json" swap_rejected)
echo "== errors=$errors garbage=$garbage degraded=$degraded swap_success=$success swap_rejected=$rejected"
if [[ "$errors" != "0" || "$garbage" != "0" || "$degraded" != "0" || \
      "$success" != "0" || "$rejected" != "3" ]]; then
  echo "FAIL: corrupted rollout leaked into serving or was not rejected" >&2
  exit 1
fi
echo "PASS: validated hot swap dropped zero requests; corrupted rollouts rejected cleanly"
