#!/usr/bin/env bash
# Crash-safe online training loop drill (DESIGN.md §15).
#
# Drives `msgcl online-train` and asserts on the JSON report:
#
#   1. zero committed records lost (and none invented) across >= 20 seeded
#      WAL crash/corruption schedules — an Append() that returned OK is
#      always recovered, in order, through torn tails and corrupt frames;
#   2. every poisoned update is blocked by the drift gate before it can
#      reach the serving fleet (poisoned == poisoned_blocked, quarantined);
#   3. fleet availability >= 0.99 while sessions train, crash, and publish
#      around the probes;
#   4. the forced probation trip rolls the fleet back to the previous
#      model's exact bits (rollback_bit_exact == 1).
#
# Usage: tools/check_online_loop_drill.sh [msgcl_bin|build_dir] [schedules]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="${1:-build/tools/msgcl}"
if [[ -d "$BIN" ]]; then BIN="$BIN/tools/msgcl"; fi
SCHEDULES="${2:-20}"

if [[ ! -x "$BIN" ]]; then
  echo "== building msgcl_cli"
  cmake --build "$(dirname "$(dirname "$BIN")")" --target msgcl_cli -j "$(nproc)" >/dev/null
fi

d=$(mktemp -d); trap 'rm -rf "$d"' EXIT

field() { sed -n "s/.*\"$2\": *\\([0-9.eE+-]*\\).*/\\1/p" "$1" | head -1; }

echo "== online loop drill: $SCHEDULES WAL schedules, 4 sessions (poison @1, crash @2)"
"$BIN" online-train --dir="$d/loop" --wal_schedules="$SCHEDULES" \
  --sessions=4 --poison_sessions=1 --crash_sessions=2 \
  --json="$d/online.json"

lost=$(field "$d/online.json" wal_lost)
spurious=$(field "$d/online.json" wal_spurious)
committed=$(field "$d/online.json" wal_committed)
torn=$(field "$d/online.json" wal_torn_appends)
corrupt=$(field "$d/online.json" wal_corrupt_appends)
echo "== wal: committed=$committed lost=$lost spurious=$spurious (torn=$torn corrupt=$corrupt)"
if [[ "$lost" != "0" || "$spurious" != "0" ]]; then
  echo "FAIL: committed WAL records lost or invented across crash schedules" >&2
  exit 1
fi
if [[ "$torn" == "0" || "$corrupt" == "0" ]]; then
  echo "FAIL: fault schedules injected no torn/corrupt appends — drill is vacuous" >&2
  exit 1
fi

poisoned=$(field "$d/online.json" poisoned)
blocked=$(field "$d/online.json" poisoned_blocked)
published=$(field "$d/online.json" published)
crashes=$(field "$d/online.json" crashes)
echo "== loop: published=$published poisoned=$poisoned blocked=$blocked crashes=$crashes"
if [[ "$poisoned" == "0" || "$poisoned" != "$blocked" ]]; then
  echo "FAIL: a poisoned update was not blocked by the drift gate" >&2
  exit 1
fi
if [[ "$published" == "0" || "$crashes" == "0" ]]; then
  echo "FAIL: drill did not exercise both publish and crash recovery" >&2
  exit 1
fi

availability=$(field "$d/online.json" availability)
rollback=$(field "$d/online.json" forced_rollback)
bit_exact=$(field "$d/online.json" rollback_bit_exact)
echo "== serve: availability=$availability rollback=$rollback bit_exact=$bit_exact"
ok=$(awk -v a="$availability" 'BEGIN { print (a >= 0.99) ? 1 : 0 }')
if [[ "$ok" != "1" ]]; then
  echo "FAIL: fleet availability $availability < 0.99 during the online loop" >&2
  exit 1
fi
if [[ "$rollback" != "1" || "$bit_exact" != "1" ]]; then
  echo "FAIL: forced probation trip did not roll back to the previous model's bits" >&2
  exit 1
fi
echo "PASS: zero committed records lost, poison gated, fleet available, rollback bit-exact"
