#!/usr/bin/env bash
# Warm-session drill for the per-session KV-state cache (DESIGN.md §12).
#
# Serves a returning-user storm (80% of requests revisit a live session)
# through a MicroBatcher with a SessionCache, then asserts on the JSON report:
#
#   1. errors == 0 and garbage == 0: the warm path never surfaces a failed or
#      non-finite response — cache hits are as safe as cold re-encodes;
#   2. warm > 0 and cold > 0: the storm actually exercised both paths;
#   3. hit_rate >= 0.5: a majority-returning-user mix keeps the cache warm;
#   4. warm_p50_us < cold_p50_us: an O(1) append against cached K/V is
#      measurably faster than an O(L) full re-encode (the CLI forces
#      max_batch=1 in session mode so the split is per-request, not smeared
#      across a shared micro-batch).
#
# Usage: tools/check_warm_session_drill.sh [msgcl_bin|build_dir] [requests]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="${1:-build/tools/msgcl}"
if [[ -d "$BIN" ]]; then BIN="$BIN/tools/msgcl"; fi
REQUESTS="${2:-1200}"

if [[ ! -x "$BIN" ]]; then
  echo "== building msgcl_cli"
  cmake --build "$(dirname "$(dirname "$BIN")")" --target msgcl_cli -j "$(nproc)" >/dev/null
fi

d=$(mktemp -d); trap 'rm -rf "$d"' EXIT

field() { sed -n "s/.*\"$2\": *\\([0-9.eE+-]*\\).*/\\1/p" "$1" | head -1; }

# max_len=48 with 40-item fresh sessions: a cold encode runs 40-48 positions
# through the transformer while a warm hit appends exactly one, so the
# warm-vs-cold p50 gap is wide and stable (short windows make it flaky).
echo "== warm session drill: $REQUESTS requests, 80% returning users"
"$BIN" serve-bench --preset=tiny --model=SASRec --max_len=48 --dim=16 \
  --repeat_user_frac=0.8 --session_initial_len=40 --session_cache_mb=64 \
  --requests="$REQUESTS" --clients=4 \
  --json="$d/sessions.json"

errors=$(field "$d/sessions.json" errors)
garbage=$(field "$d/sessions.json" garbage)
warm=$(field "$d/sessions.json" warm)
cold=$(field "$d/sessions.json" cold)
hit_rate=$(field "$d/sessions.json" hit_rate)
warm_p50=$(field "$d/sessions.json" warm_p50_us)
cold_p50=$(field "$d/sessions.json" cold_p50_us)
echo "== errors=$errors garbage=$garbage warm=$warm cold=$cold hit_rate=$hit_rate"
echo "== warm_p50=${warm_p50}us cold_p50=${cold_p50}us"

if [[ "$errors" != "0" || "$garbage" != "0" ]]; then
  echo "FAIL: warm-session storm surfaced errors or garbage scores" >&2
  exit 1
fi
if [[ "$warm" == "0" || "$cold" == "0" ]]; then
  echo "FAIL: storm did not exercise both the warm and the cold path" >&2
  exit 1
fi
if ! awk -v h="$hit_rate" 'BEGIN { exit !(h >= 0.5) }'; then
  echo "FAIL: hit rate $hit_rate below 0.5 for an 80% returning-user mix" >&2
  exit 1
fi
if ! awk -v w="$warm_p50" -v c="$cold_p50" 'BEGIN { exit !(w < c) }'; then
  echo "FAIL: warm p50 ${warm_p50}us not below cold p50 ${cold_p50}us" >&2
  exit 1
fi
echo "PASS: warm sessions hit the cache (hit_rate=$hit_rate) and beat cold re-encodes (p50 ${warm_p50}us < ${cold_p50}us) with zero garbage"
