#!/usr/bin/env bash
# Bounds the hot-path cost of the MSGCL_OBS scoped timers (DESIGN.md §8).
#
# Builds bench_micro_kernels twice — instrumented (MSGCL_OBS=ON, the default)
# and stripped (MSGCL_OBS=OFF) — then runs the kernel timing in both
# directions through `bench_micro_kernels --check_overhead`:
#
#   1. OFF timings vs an ON baseline: the macros must not pessimise the
#      uninstrumented build (include or code-layout accidents);
#   2. ON timings vs an OFF baseline: the instrumentation itself must cost
#      less than MAX_REGRESS on every kernel.
#
# Both checks passing means the two builds time within MAX_REGRESS (default
# 2%) of each other on every hot kernel.
#
# Usage: tools/check_no_obs_overhead.sh [build_dir] [max_regress]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-obs-check}"
MAX_REGRESS="${2:-0.02}"

configure_and_build() {
  local dir="$1" obs="$2"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DMSGCL_OBS="$obs" \
    -DMSGCL_BUILD_TESTS=OFF -DMSGCL_BUILD_BENCH=ON >/dev/null
  cmake --build "$dir" --target bench_micro_kernels -j "$(nproc)" >/dev/null
}

echo "== building instrumented (MSGCL_OBS=ON) and stripped (MSGCL_OBS=OFF) kernels"
configure_and_build "$BUILD/on" ON
configure_and_build "$BUILD/off" OFF

echo "== recording baselines (single-threaded best-of-reps)"
"$BUILD/on/bench/bench_micro_kernels" --threads=1 --json="$BUILD/baseline_on.json"
"$BUILD/off/bench/bench_micro_kernels" --threads=1 --json="$BUILD/baseline_off.json"

echo "== check 1: MSGCL_OBS=OFF kernels vs instrumented baseline"
"$BUILD/off/bench/bench_micro_kernels" \
  --check_overhead="$BUILD/baseline_on.json" --max_regress="$MAX_REGRESS"

echo "== check 2: instrumented kernels vs MSGCL_OBS=OFF baseline"
"$BUILD/on/bench/bench_micro_kernels" \
  --check_overhead="$BUILD/baseline_off.json" --max_regress="$MAX_REGRESS"

echo "ok: instrumented and stripped builds agree within ${MAX_REGRESS} on every kernel"
