#!/usr/bin/env bash
# Gates the SIMD kernel backend's single-thread payoff (DESIGN.md §13).
#
# Runs `bench_micro_kernels --json=...`, which times every hot kernel twice
# single-threaded — once under the active SIMD dispatch and once forced to
# the scalar reference — and records `simd_speedup` per kernel. The drill
# PASSES when at least MIN_KERNELS of the vectorized families
# {matmul, elementwise, softmax, layernorm} clear MIN_SPEEDUP (default
# 1.5x on 2 kernels; reduce_sum is a serial-chain kernel and is exempt).
#
# On a machine without AVX2 the report says `"isa": "scalar"` and the drill
# skips: there is no SIMD path to gate.
#
# Usage: tools/check_kernel_speedup.sh <bench_micro_kernels> [json_out]
#        MIN_SPEEDUP=1.5 MIN_KERNELS=2 tools/check_kernel_speedup.sh ...
set -euo pipefail

BENCH="${1:?usage: check_kernel_speedup.sh <bench_micro_kernels> [json_out]}"
if [[ -n "${2:-}" ]]; then
  JSON="$2"  # caller-owned: kept after exit
else
  JSON=$(mktemp /tmp/BENCH_kernels.XXXXXX.json); trap 'rm -f "$JSON"' EXIT
fi
MIN_SPEEDUP="${MIN_SPEEDUP:-1.5}"
MIN_KERNELS="${MIN_KERNELS:-2}"

echo "== timing kernels (simd vs scalar dispatch, single-threaded)"
"$BENCH" --threads=2 --json="$JSON"

if grep -q '"isa": *"scalar"' "$JSON"; then
  echo "skip: scalar-only machine (no AVX2), nothing to gate"
  exit 0
fi

# One record per kernel object: pull (name, simd_speedup) pairs out of the
# compact JSON without requiring a JSON tool.
PASS=$(awk -v min="$MIN_SPEEDUP" '
  BEGIN { RS="{"; passed = 0 }
  /"simd_speedup"/ {
    name = $0; sub(/.*"name": *"/, "", name); sub(/".*/, "", name)
    sp = $0; sub(/.*"simd_speedup": */, "", sp); sub(/[,}\]].*/, "", sp)
    if (name ~ /^(matmul|elementwise|softmax|layernorm)/) {
      ok = (sp + 0 >= min + 0) ? "ok" : "below"
      printf "  %-24s simd_speedup %.2fx  %s\n", name, sp, ok > "/dev/stderr"
      if (ok == "ok") passed++
    }
  }
  END { print passed }' "$JSON")

if [ "$PASS" -lt "$MIN_KERNELS" ]; then
  echo "FAIL: only $PASS vectorized kernel(s) reached ${MIN_SPEEDUP}x (need $MIN_KERNELS); see $JSON"
  exit 1
fi
echo "ok: $PASS vectorized kernels at >= ${MIN_SPEEDUP}x over the scalar reference ($JSON)"
