// msgcl — command-line interface to the Meta-SGCL library.
//
// Subcommands:
//   generate   write a synthetic interaction log as CSV
//   train      train a model on a CSV log (or a synthetic preset) and save
//              a checkpoint
//   evaluate   load a checkpoint and report HR/NDCG/MRR on the test split
//   recommend  load a checkpoint and print top-K items for one user
//   serve-bench  drive a request storm through the batched serving subsystem
//              (DESIGN.md §9) and report QPS + latency percentiles
//   online-train  crash-safe online training loop drill (DESIGN.md §15):
//              WAL crash/corruption schedules, drift-gated sessions into a
//              probed serving swap, and a forced bit-exact rollback
//
// Examples:
//   msgcl generate --preset=toys --scale=0.25 --out=toys.csv
//   msgcl train --data=toys.csv --model=Meta-SGCL --epochs=30 --ckpt=m.bin
//   msgcl evaluate --data=toys.csv --model=Meta-SGCL --ckpt=m.bin
//   msgcl recommend --data=toys.csv --model=Meta-SGCL --ckpt=m.bin --user=3
//   msgcl serve-bench --data=toys.csv --model=Meta-SGCL --ckpt=m.bin
//     --requests=2000 --clients=16 --max_batch=32 --max_wait_us=1000
//
// serve-bench flags: --k (top-k size), --requests, --clients (closed-loop
// client threads), --max_batch, --max_wait_us, --workers (batcher workers),
// --deadline_us (per-request deadline, 0 = none). --ckpt is optional; without
// it the storm runs over freshly initialized weights, which is fine for
// latency measurement.
//
// Serving resilience (DESIGN.md §10):
//   --queue_capacity=N     admission-control bound on pending requests
//                          (excess submissions shed with RESOURCE_EXHAUSTED;
//                          0 = unbounded)
//   --score_timeout_us=N   scoring calls longer than this count as batch
//                          failures (0 = disabled)
//   --chaos                inject scoring faults (throw + NaN scores) into
//                          --fault_rate (default 0.1) of batches; the circuit
//                          breaker + popularity fallback keep availability up
//   --no_fallback          disable the degraded-mode fallback ranker (failed
//                          batches then surface as typed errors)
//
// Replicated fleet + hot swap (DESIGN.md §11; serve-bench only):
//   --replicas=N                 consistent-hash route across N replicas
//   --kill_replica=R             which replica the kill/restart events target
//   --kill_replica_after_us=T    kill that replica T us into the storm
//   --restart_replica_after_us=T restart it T us into the storm
//   --swaps=N                    hot-swap the model N times during the storm
//   --swap_interval_us=T         delay between swap attempts (default 20000)
//   --swap_corrupt=truncate|nan  corrupt the rollout source; every swap must
//                                then be rejected with the active model intact
//   --swap_min_hr / --swap_min_ndcg  golden smoke-score floors (<0 = off)
//   --swap_crash_attempts=0,2    inject a crash mid-swap at those attempts
//   --swap_ckpt=path             where the rollout source checkpoint is staged
//   --json=report.json           write the storm report as flat JSON (used by
//                                tools/check_chaos_drill.sh / check_swap_drill.sh)
// --replicas and --swaps are separate drills and cannot be combined.
//
// Intra-model sharded scoring (DESIGN.md §14; serve-bench only):
//   --shards=S             wrap every served model in a ShardedRanker over S
//                          contiguous id-range shards; composes with
//                          --replicas, --swaps and session mode (the merged
//                          lists stay bit-identical to unsharded scoring)
//   --shard_parity         check sharded-vs-unsharded bit parity over real
//                          histories and exit 0/1 instead of running a storm
//                          (tools/check_shard_parity.sh drives this under
//                          MSGCL_SIMD=scalar and avx2)
//
// Returning-user sessions (DESIGN.md §12; serve-bench only):
//   --repeat_user_frac=F         fraction of requests that revisit a live
//                                session (0 = off); enables the per-session
//                                KV cache and a warm/cold latency split.
//                                Forces max_batch=1 so warm and cold rows are
//                                timed per-request, not smeared by batching
//   --session_cache_mb=N         SessionCache capacity in MiB (default 64)
//   --session_initial_len=N      history length of a fresh session (default
//                                max_len - 10); sessions retire at max_len
// Session mode is a single-replica drill (no --replicas/--swaps); the JSON
// report gains hit_rate, warm/cold p50/p95 and cache counters (used by
// tools/check_warm_session_drill.sh).
//
// Crash-safe online loop (DESIGN.md §15; online-train only):
//   --dir=path             working directory (WAL, checkpoints, quarantine)
//   --wal_schedules=20     seeded crash/corruption schedules for the WAL leg
//   --wal_records=60       committed records per schedule
//   --torn_rate=0.06 --corrupt_rate=0.10  per-append fault probabilities
//   --sessions=4           ingest->train->gate->publish sessions to run
//   --epochs_per_session=2 incremental epochs per session
//   --poison_sessions=1    sessions whose update is poisoned post-training
//   --crash_sessions=      sessions that crash between train and publish
//   --probe_requests=200   serving requests driven after each session
//   --fault_seed=N         seed for the online fault injector
//   --json=report.json     flat JSON report (tools/check_online_loop_drill.sh)
//
// Architecture flags (--dim, --layers, --heads, --max_len) must match
// between train and evaluate/recommend; the checkpoint loader verifies
// shapes and refuses mismatches.
//
// Fault-tolerant training (see DESIGN.md "Fault-tolerant training runtime"):
//   --state=run.state            write a v2 resumable train state (weights +
//                                optimizer moments + RNG + early stopping)
//   --checkpoint_every=N         v2 checkpoint cadence in epochs (default 1)
//   --resume=run.state           continue a killed run bit-exactly
//   --recovery=retry|skip|abort  numeric-health policy (default retry)
//   --max_retries=N --lr_decay=F rollback-retry backoff knobs
//   --inject_grad_steps=3,7      chaos drill: poison gradients at steps 3,7
//   --inject_loss_steps=5        chaos drill: poison the loss at step 5
//   --fault_kind=nan|inf|huge    what the injected fault writes
//
// Parallelism:
//   --threads=N                  intra-op worker threads for tensor kernels
//                                (default: MSGCL_NUM_THREADS env, else the
//                                hardware concurrency). Results are bitwise
//                                identical for every thread count.
//
// Observability (train only; see DESIGN.md §8):
//   --profile                    print the per-op profile table after training
//   --metrics-out=m.json         write the full metrics snapshot (counters,
//                                gauges, per-op timings, histograms) as JSON
//   --trace-out=t.json           record a chrome://tracing event file
//   --telemetry-out=run.csv      per-epoch telemetry CSV (loss terms,
//                                grad norm, HR/NDCG@10, wall time); resumed
//                                runs append to the existing file
// Per-op timings require an MSGCL_OBS=ON build (the default); counters and
// telemetry work in every build.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/core.h"
#include "data/data.h"
#include "data/event_log.h"
#include "eval/eval.h"
#include "models/models.h"
#include "obs/obs.h"
#include "parallel/parallel.h"
#include "runtime/online.h"
#include "serve/serve.h"
#include "tensor/kernels.h"

namespace {

using namespace msgcl;

// Minimal --key=value parser (mirrors bench::Flags; tools stay standalone).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& k, std::string def = "") const {
    auto it = values_.find(k);
    return it == values_.end() ? def : it->second;
  }
  double GetD(const std::string& k, double def) const {
    auto it = values_.find(k);
    return it == values_.end() ? def : std::stod(it->second);
  }
  int64_t GetI(const std::string& k, int64_t def) const {
    auto it = values_.find(k);
    return it == values_.end() ? def : std::stoll(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

data::SyntheticConfig PresetByName(const std::string& name, double scale) {
  if (name == "clothing") return data::ClothingLike(scale);
  if (name == "toys") return data::ToysLike(scale);
  if (name == "ml1m") return data::Ml1mLike(scale);
  if (name == "tiny") return data::TinyDataset();
  std::fprintf(stderr, "unknown preset '%s' (clothing|toys|ml1m|tiny)\n", name.c_str());
  std::exit(2);
}

Result<data::InteractionLog> LoadData(const Args& args) {
  const std::string path = args.Get("data");
  if (!path.empty()) {
    data::CsvOptions opt;
    opt.k_core = static_cast<int32_t>(args.GetI("k_core", 5));
    opt.min_rating = args.GetD("min_rating", 4.0);
    return data::LoadCsv(path, opt);
  }
  return data::GenerateSynthetic(
      PresetByName(args.Get("preset", "toys"), args.GetD("scale", 0.25)));
}

// "3,7,12" -> {3, 7, 12}; empty string -> empty set.
std::set<int64_t> ParseStepList(const std::string& csv) {
  std::set<int64_t> steps;
  size_t start = 0;
  while (start < csv.size()) {
    size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    if (end > start) steps.insert(std::stoll(csv.substr(start, end - start)));
    start = end + 1;
  }
  return steps;
}

// Builds a deterministic fault injector from --inject_* flags, or nullptr
// when no fault was requested.
std::unique_ptr<runtime::FaultInjector> MakeInjector(const Args& args) {
  runtime::FaultPlan plan;
  plan.corrupt_grad_steps = ParseStepList(args.Get("inject_grad_steps"));
  plan.corrupt_loss_steps = ParseStepList(args.Get("inject_loss_steps"));
  if (plan.corrupt_grad_steps.empty() && plan.corrupt_loss_steps.empty()) return nullptr;
  const std::string kind = args.Get("fault_kind", "nan");
  if (kind == "inf") plan.kind = runtime::FaultKind::kInf;
  else if (kind == "huge") plan.kind = runtime::FaultKind::kHugeValue;
  else plan.kind = runtime::FaultKind::kNaN;
  plan.seed = static_cast<uint64_t>(args.GetI("fault_seed", 0xFA017));
  return std::make_unique<runtime::FaultInjector>(plan);
}

std::unique_ptr<models::Recommender> MakeModel(const std::string& name,
                                               const data::SequenceDataset& ds,
                                               const Args& args,
                                               runtime::FaultInjector* injector = nullptr,
                                               models::FitHistory* history = nullptr) {
  models::BackboneConfig backbone;
  backbone.num_items = ds.num_items;
  backbone.max_len = args.GetI("max_len", 16);
  backbone.dim = args.GetI("dim", 32);
  backbone.heads = args.GetI("heads", 2);
  backbone.layers = args.GetI("layers", 1);
  backbone.dropout = static_cast<float>(args.GetD("dropout", 0.2));

  models::TrainConfig train;
  train.epochs = args.GetI("epochs", 30);
  train.max_len = backbone.max_len;
  train.lr = static_cast<float>(args.GetD("lr", 3e-3));
  train.batch_size = args.GetI("batch", 128);
  train.seed = args.GetI("seed", 42);
  train.num_threads = args.GetI("threads", 0);
  train.eval_every = args.GetI("eval_every", 2);
  train.patience = args.GetI("patience", 4);
  train.verbose = args.Get("verbose") == "1";
  train.history = history;
  train.fault_injector = injector;
  train.checkpoint_path = args.Get("state");
  train.checkpoint_every = args.GetI("checkpoint_every", 1);
  train.resume_from = args.Get("resume");
  train.telemetry_path = args.Get("telemetry-out");
  const std::string recovery = args.Get("recovery", "retry");
  if (recovery == "abort") train.recovery.policy = runtime::RecoveryPolicy::kAbort;
  else if (recovery == "skip") train.recovery.policy = runtime::RecoveryPolicy::kSkipBatch;
  else if (recovery == "retry") train.recovery.policy = runtime::RecoveryPolicy::kRollbackRetry;
  else {
    std::fprintf(stderr, "unknown recovery policy '%s' (retry|skip|abort)\n",
                 recovery.c_str());
    std::exit(2);
  }
  train.recovery.max_retries = args.GetI("max_retries", 3);
  train.recovery.lr_decay = static_cast<float>(args.GetD("lr_decay", 0.5));

  Rng rng(train.seed * 31 + 7);
  if (name == "SASRec") return std::make_unique<models::SasRec>(backbone, train, rng);
  if (name == "DuoRec") {
    models::DuoRecConfig c;
    c.backbone = backbone;
    c.tau = 0.5f;
    c.similarity = nn::Similarity::kCosine;
    return std::make_unique<models::DuoRec>(c, train, rng);
  }
  if (name == "ContrastVAE") {
    models::ContrastVaeConfig c;
    c.backbone = backbone;
    return std::make_unique<models::ContrastVae>(std::move(c), train, rng);
  }
  if (name == "Meta-SGCL") {
    core::MetaSgclConfig c;
    c.backbone = backbone;
    c.alpha = static_cast<float>(args.GetD("alpha", 0.1));
    c.beta = static_cast<float>(args.GetD("beta", 0.2));
    c.tau = static_cast<float>(args.GetD("tau", 1.0));
    c.use_decoder = args.GetI("use_decoder", 0) != 0;
    return std::make_unique<core::MetaSgcl>(c, train, rng);
  }
  std::fprintf(stderr, "unknown model '%s' (SASRec|DuoRec|ContrastVAE|Meta-SGCL)\n",
               name.c_str());
  std::exit(2);
}

nn::Module* AsModule(models::Recommender* r) {
  // All CLI-constructible models derive from nn::Module.
  return dynamic_cast<nn::Module*>(r);
}

int CmdGenerate(const Args& args) {
  auto cfg = PresetByName(args.Get("preset", "toys"), args.GetD("scale", 0.25));
  cfg.seed = args.GetI("seed", 42);
  auto log_result = data::GenerateSynthetic(cfg);
  if (!log_result.ok()) {
    std::fprintf(stderr, "%s\n", log_result.status().ToString().c_str());
    return 1;
  }
  const auto& log = log_result.value();
  const std::string out_path = args.Get("out", "synthetic.csv");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  for (int32_t u = 0; u < log.num_users(); ++u) {
    for (size_t t = 0; t < log.sequences[u].size(); ++t) {
      out << "u" << u << ",i" << log.sequences[u][t] << ",5," << t << "\n";
    }
  }
  std::printf("wrote %lld interactions (%d users, %d items) to %s\n",
              static_cast<long long>(log.num_interactions()), log.num_users(),
              log.num_items, out_path.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  auto log = LoadData(args);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  auto ds = data::LeaveOneOutSplit(log.value());
  const std::string model_name = args.Get("model", "Meta-SGCL");
  auto injector = MakeInjector(args);
  models::FitHistory history;
  auto model = MakeModel(model_name, ds, args, injector.get(), &history);
  const bool profile = args.Get("profile") == "1";
  const std::string metrics_out = args.Get("metrics-out");
  const std::string trace_out = args.Get("trace-out");
  if (!obs::kEnabled && (profile || !metrics_out.empty() || !trace_out.empty())) {
    std::fprintf(stderr,
                 "warning: built with MSGCL_OBS=OFF; per-op timings are compiled "
                 "out (counters and telemetry still work)\n");
  }
  if (!trace_out.empty()) obs::Registry::Global().SetTraceEnabled(true);
  std::printf("training %s on %d users / %d items...\n", model->name().c_str(),
              ds.num_users(), ds.num_items);
  if (Status s = model->Fit(ds); !s.ok()) {
    std::fprintf(stderr, "training failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (history.resumed_from_epoch >= 0) {
    std::printf("resumed after epoch %lld\n",
                static_cast<long long>(history.resumed_from_epoch));
  }
  if (!history.recovery_events.empty()) {
    std::printf("numeric-health recovery: %zu event(s), %lld retry(ies), %lld skipped batch(es)\n",
                history.recovery_events.size(),
                static_cast<long long>(history.rollback_retries),
                static_cast<long long>(history.skipped_batches));
    for (const auto& e : history.recovery_events) {
      std::printf("  epoch %lld step %lld: %s\n", static_cast<long long>(e.epoch),
                  static_cast<long long>(e.global_step), e.detail.c_str());
    }
  }
  eval::EvalConfig ecfg;
  ecfg.max_len = args.GetI("max_len", 16);
  auto metrics = eval::Evaluate(*model, ds, eval::Split::kTest, ecfg);
  std::printf("test: %s MRR=%.4f\n", metrics.ToString().c_str(), metrics.mrr);
  // Observability exports: snapshot once so the profile table, JSON metrics
  // and trace all describe the same instant.
  if (profile || !metrics_out.empty() || !trace_out.empty()) {
    obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
    if (profile) obs::PrintProfile(snap, stdout);
    if (!metrics_out.empty()) {
      if (Status s = obs::WriteMetricsJson(snap, metrics_out); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      if (Status s = obs::WriteChromeTrace(obs::Registry::Global().TraceEvents(), trace_out);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("chrome trace written to %s (load via chrome://tracing)\n",
                  trace_out.c_str());
    }
  }
  const std::string ckpt = args.Get("ckpt");
  if (!ckpt.empty()) {
    Status s = nn::SaveCheckpoint(*AsModule(model.get()), ckpt);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint saved to %s\n", ckpt.c_str());
  }
  return 0;
}

int CmdEvaluate(const Args& args) {
  auto log = LoadData(args);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  auto ds = data::LeaveOneOutSplit(log.value());
  auto model = MakeModel(args.Get("model", "Meta-SGCL"), ds, args);
  Status s = nn::LoadCheckpoint(*AsModule(model.get()), args.Get("ckpt"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  AsModule(model.get())->SetTraining(false);
  eval::EvalConfig ecfg;
  ecfg.max_len = args.GetI("max_len", 16);
  auto test = eval::Evaluate(*model, ds, eval::Split::kTest, ecfg);
  auto valid = eval::Evaluate(*model, ds, eval::Split::kValidation, ecfg);
  std::printf("valid: %s MRR=%.4f\n", valid.ToString().c_str(), valid.mrr);
  std::printf("test:  %s MRR=%.4f\n", test.ToString().c_str(), test.mrr);
  return 0;
}

int CmdRecommend(const Args& args) {
  auto log = LoadData(args);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  auto ds = data::LeaveOneOutSplit(log.value());
  auto model = MakeModel(args.Get("model", "Meta-SGCL"), ds, args);
  Status s = nn::LoadCheckpoint(*AsModule(model.get()), args.Get("ckpt"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  AsModule(model.get())->SetTraining(false);
  const int32_t user = static_cast<int32_t>(args.GetI("user", 0));
  if (user < 0 || user >= ds.num_users()) {
    std::fprintf(stderr, "user %d out of range [0, %d)\n", user, ds.num_users());
    return 1;
  }
  eval::RecommendOptions opt;
  opt.k = args.GetI("k", 10);
  opt.max_len = args.GetI("max_len", 16);
  auto recs = eval::RecommendTopK(*model, ds.TestInput(user), ds.num_items, opt);
  std::printf("top-%lld recommendations for user %d:\n", static_cast<long long>(opt.k),
              user);
  for (const auto& r : recs) std::printf("  item %-6d score %.4f\n", r.item, r.score);
  return 0;
}

// Warm/cold session outcomes for the returning-user drill
// (tools/check_warm_session_drill.sh). Only written when --repeat_user_frac
// enables session mode.
struct SessionBenchOut {
  serve::SessionLoadReport report;
  serve::SessionCache::Stats cache;
};

// Flat JSON report for the drill scripts (tools/check_chaos_drill.sh,
// tools/check_swap_drill.sh, tools/check_warm_session_drill.sh): loadgen
// outcomes plus fleet/swap outcome counts and optional session-cache stats.
int WriteServeJson(const std::string& path, const serve::LoadgenReport& report,
                   int replicas, int64_t swap_attempts, int64_t swap_success,
                   int64_t swap_rejected, const SessionBenchOut* session) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("requests"); json.Int(report.requests);
  json.Key("ok"); json.Int(report.ok);
  json.Key("degraded"); json.Int(report.degraded);
  json.Key("shed"); json.Int(report.shed);
  json.Key("deadline_expired"); json.Int(report.deadline_expired);
  json.Key("errors"); json.Int(report.errors);
  json.Key("garbage"); json.Int(report.garbage);
  json.Key("availability"); json.Double(report.availability);
  json.Key("qps"); json.Double(report.qps);
  json.Key("p50_us"); json.Double(report.p50_us);
  json.Key("p95_us"); json.Double(report.p95_us);
  json.Key("p99_us"); json.Double(report.p99_us);
  json.Key("replicas"); json.Int(replicas);
  json.Key("swap_attempts"); json.Int(swap_attempts);
  json.Key("swap_success"); json.Int(swap_success);
  json.Key("swap_rejected"); json.Int(swap_rejected);
  if (session != nullptr) {
    json.Key("warm"); json.Int(session->report.warm);
    json.Key("cold"); json.Int(session->report.cold);
    json.Key("hit_rate"); json.Double(session->report.hit_rate);
    json.Key("warm_p50_us"); json.Double(session->report.warm_p50_us);
    json.Key("warm_p95_us"); json.Double(session->report.warm_p95_us);
    json.Key("cold_p50_us"); json.Double(session->report.cold_p50_us);
    json.Key("cold_p95_us"); json.Double(session->report.cold_p95_us);
    json.Key("cache_hits"); json.Int(session->cache.hits);
    json.Key("cache_misses"); json.Int(session->cache.misses);
    json.Key("cache_evictions"); json.Int(session->cache.evictions);
    json.Key("cache_invalidations"); json.Int(session->cache.invalidations);
    json.Key("cache_entries"); json.Int(session->cache.entries);
    json.Key("cache_bytes"); json.Int(session->cache.bytes);
  }
  json.EndObject();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json.Take() << "\n";
  return 0;
}

int CmdServeBench(const Args& args) {
  auto log = LoadData(args);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  auto ds = data::LeaveOneOutSplit(log.value());

  const int replicas = static_cast<int>(args.GetI("replicas", 1));
  const int64_t swaps = args.GetI("swaps", 0);
  if (replicas < 1) {
    std::fprintf(stderr, "--replicas must be >= 1\n");
    return 2;
  }
  if (replicas > 1 && swaps > 0) {
    std::fprintf(stderr,
                 "--replicas and --swaps are separate drills; run one at a time\n");
    return 2;
  }

  // One model instance per replica (plus a standby when hot-swapping): the
  // same flags and seed produce identical architectures and initial weights.
  const std::string model_name = args.Get("model", "Meta-SGCL");
  const int instances = swaps > 0 ? 2 : replicas;
  std::vector<std::unique_ptr<models::Recommender>> models;
  models.reserve(static_cast<size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    models.push_back(MakeModel(model_name, ds, args));
    if (const std::string ckpt = args.Get("ckpt"); !ckpt.empty()) {
      if (Status s = nn::LoadCheckpoint(*AsModule(models.back().get()), ckpt);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    AsModule(models.back().get())->SetTraining(false);
  }
  models::Recommender* model = models[0].get();

  // Intra-model sharded scoring (DESIGN.md §14): --shards=S wraps every
  // served model in a ShardedRanker over S contiguous id ranges, composing
  // with --replicas / --swaps / session mode. The wrappers live here so
  // they outlive every batcher/router below.
  const int shards = static_cast<int>(args.GetI("shards", 1));
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  std::vector<std::unique_ptr<serve::ShardedRanker>> sharded_wrappers;
  auto MaybeShard = [&](eval::Ranker* r) -> eval::Ranker* {
    if (shards <= 1) return r;
    sharded_wrappers.push_back(std::make_unique<serve::ShardedRanker>(
        *r, serve::MakeItemShards(ds.num_items, shards)));
    return sharded_wrappers.back().get();
  };

  // --shard_parity: bit-compare the sharded merge against unsharded fused
  // scoring over real histories and exit 0/1 — the drill entry point
  // (tools/check_shard_parity.sh) runs this under MSGCL_SIMD=scalar/avx2.
  if (args.GetI("shard_parity", 0) != 0) {
    const int s = std::max(shards, 2);
    eval::Ranker& ref = *models[0];
    serve::ShardedRanker sharded(ref, serve::MakeItemShards(ds.num_items, s));
    eval::TopKOptions opt;
    opt.k = args.GetI("k", 10);
    opt.exclude_seen = true;
    opt.num_items = ds.num_items;
    const int64_t max_len = args.GetI("max_len", 16);
    int64_t rows = 0;
    for (size_t u = 0; u < ds.train_seqs.size() && rows < 64; ++u) {
      if (ds.train_seqs[u].empty()) continue;
      const std::vector<std::vector<int32_t>> inputs = {ds.train_seqs[u]};
      const data::Batch batch = data::MakeEvalBatch(inputs, {0}, max_len);
      const eval::TopKList want = ref.ScoreTopK(batch, opt)[0];
      const eval::TopKList got = sharded.ScoreTopK(batch, opt)[0];
      bool equal = want.size() == got.size();
      for (size_t i = 0; equal && i < want.size(); ++i) {
        equal = want[i].item == got[i].item &&
                std::memcmp(&want[i].score, &got[i].score, sizeof(float)) == 0;
      }
      if (!equal) {
        std::fprintf(stderr,
                     "shard parity FAILED: model=%s user=%zu S=%d isa=%s\n",
                     model->name().c_str(), u, s,
                     simd::IsaName(simd::ActiveIsa()));
        return 1;
      }
      ++rows;
    }
    std::printf("shard parity OK: model=%s S=%d rows=%lld isa=%s\n",
                model->name().c_str(), s, static_cast<long long>(rows),
                simd::IsaName(simd::ActiveIsa()));
    return 0;
  }

  serve::ServeConfig config;
  config.k = args.GetI("k", 10);
  config.max_len = args.GetI("max_len", 16);
  config.max_batch = args.GetI("max_batch", 32);
  config.max_wait_us = args.GetI("max_wait_us", 1000);
  config.num_workers = static_cast<int>(args.GetI("workers", 2));
  config.queue_capacity = args.GetI("queue_capacity", 0);
  config.score_timeout_us = args.GetI("score_timeout_us", 0);
  serve::LoadgenConfig load;
  load.requests = args.GetI("requests", 1000);
  load.clients = static_cast<int>(args.GetI("clients", 8));
  load.deadline_us = args.GetI("deadline_us", 0);
  load.k = config.k;

  // Returning-user session mode: --repeat_user_frac > 0 swaps the storm for a
  // warm/cold mix served through a SessionCache. Forces max_batch=1 so warm
  // and cold latencies are measured per-request rather than smeared across a
  // shared micro-batch (a batch resolves all its rows together, which would
  // make warm ~= cold no matter how much encoding the cache saved).
  const double repeat_user_frac = args.GetD("repeat_user_frac", 0.0);
  const int64_t session_cache_mb = args.GetI("session_cache_mb", 64);
  const int64_t session_initial_len =
      args.GetI("session_initial_len", std::max<int64_t>(1, config.max_len - 10));
  if (repeat_user_frac > 0.0 && (replicas > 1 || swaps > 0)) {
    std::fprintf(stderr,
                 "--repeat_user_frac is a single-replica drill; run it without "
                 "--replicas/--swaps\n");
    return 2;
  }

  const bool chaos = args.GetI("chaos", 0) != 0;
  const bool no_fallback = args.GetI("no_fallback", 0) != 0;
  const std::set<int64_t> swap_crashes = ParseStepList(args.Get("swap_crash_attempts"));
  std::unique_ptr<runtime::ServeFaultInjector> injector;
  if (chaos || !swap_crashes.empty()) {
    runtime::ServeFaultPlan plan;
    if (chaos) {
      plan.fault_rate = args.GetD("fault_rate", 0.10);
      plan.kinds = {runtime::ServeFaultKind::kScoreThrow,
                    runtime::ServeFaultKind::kNaNScores};
    }
    plan.swap_crash_attempts = swap_crashes;
    plan.seed = static_cast<uint64_t>(args.GetI("seed", 42));
    injector = std::make_unique<runtime::ServeFaultInjector>(std::move(plan));
    if (chaos) {
      config.fault_injector = injector.get();
      config.breaker.degraded_after = 1;
      config.breaker.open_after = 2;
      config.breaker.open_backoff_us = 2000;
      config.breaker.max_backoff_us = 100000;
    }
  }
  serve::FallbackRanker fallback;
  if (!no_fallback) {
    fallback = serve::FallbackRanker::FromSequences(ds.train_seqs, ds.num_items);
    config.fallback = &fallback;
  }

  // Serving histories: each user's full training sequence.
  std::printf("serving %s: %lld requests, %d clients, max_batch=%lld, "
              "max_wait=%lldus, replicas=%d%s%s...\n",
              model->name().c_str(), static_cast<long long>(load.requests),
              load.clients, static_cast<long long>(config.max_batch),
              static_cast<long long>(config.max_wait_us), replicas,
              chaos ? ", CHAOS" : "",
              swaps > 0 ? ", HOT-SWAP"
                        : (repeat_user_frac > 0.0 ? ", SESSIONS" : ""));

  serve::LoadgenReport report;
  std::unique_ptr<SessionBenchOut> session;
  int64_t swap_attempts = 0;
  int64_t swap_success = 0;
  int64_t swap_rejected = 0;
  const std::string swap_corrupt = args.Get("swap_corrupt");

  if (replicas > 1) {
    // Shard-kill drill: consistent-hash fleet, optionally killing (and later
    // restarting) one replica mid-storm.
    serve::FleetConfig fleet;
    fleet.replicas = replicas;
    fleet.serve = config;
    if (!no_fallback) fleet.fallback = &fallback;
    std::vector<eval::Ranker*> rankers;
    rankers.reserve(models.size());
    for (auto& m : models) rankers.push_back(MaybeShard(m.get()));
    serve::Router router(std::move(rankers), ds.num_items, fleet);

    const int victim = static_cast<int>(args.GetI("kill_replica", 0));
    if (victim < 0 || victim >= replicas) {
      std::fprintf(stderr, "--kill_replica=%d out of range [0, %d)\n", victim,
                   replicas);
      return 2;
    }
    std::vector<serve::FleetChaosEvent> events;
    if (const int64_t at = args.GetI("kill_replica_after_us", 0); at > 0) {
      events.push_back({at, victim, serve::FleetChaosEvent::Action::kKill});
    }
    if (const int64_t at = args.GetI("restart_replica_after_us", 0); at > 0) {
      events.push_back({at, victim, serve::FleetChaosEvent::Action::kRestart});
    }
    report = serve::RunFleetLoad(router, ds.train_seqs, load, std::move(events));
    std::printf("healthy replicas at end of storm: %d/%d\n",
                router.healthy_replicas(), replicas);
    router.Stop();
  } else if (swaps > 0) {
    // Hot-swap drill: serve through a SwappableRanker while a rollout thread
    // re-applies a source checkpoint every --swap_interval_us. The source is
    // the active weights themselves (a healthy no-op rollout), optionally
    // corrupted to exercise the validation gate.
    serve::SwapConfig swap_config;
    swap_config.k = config.k;
    swap_config.max_len = config.max_len;
    swap_config.min_hr = args.GetD("swap_min_hr", -1.0);
    swap_config.min_ndcg = args.GetD("swap_min_ndcg", -1.0);
    swap_config.fault_injector = injector.get();
    for (const auto& seq : ds.train_seqs) {  // leave-one-out golden batch
      if (seq.size() < 2) continue;
      swap_config.golden.histories.emplace_back(seq.begin(), seq.end() - 1);
      swap_config.golden.targets.push_back(seq.back());
      if (swap_config.golden.targets.size() >= 8) break;
    }

    const std::string swap_ckpt = args.Get("swap_ckpt", "msgcl_swap_src.ckpt");
    if (swap_corrupt == "nan") {
      auto poisoned = MakeModel(model_name, ds, args);
      auto params = AsModule(poisoned.get())->NamedParameters();
      params[0].second.data()[0] = std::numeric_limits<float>::quiet_NaN();
      if (Status s = nn::SaveCheckpoint(*AsModule(poisoned.get()), swap_ckpt);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    } else if (swap_corrupt.empty() || swap_corrupt == "truncate") {
      if (Status s = nn::SaveCheckpoint(*AsModule(models[0].get()), swap_ckpt);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      if (swap_corrupt == "truncate") {
        std::string bytes;
        {
          std::ifstream in(swap_ckpt, std::ios::binary);
          bytes.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
        }
        bytes.resize(std::min<size_t>(bytes.size(), 64));
        std::ofstream out(swap_ckpt, std::ios::binary | std::ios::trunc);
        out << bytes;
      }
    } else {
      std::fprintf(stderr, "unknown --swap_corrupt='%s' (truncate|nan)\n",
                   swap_corrupt.c_str());
      return 2;
    }

    // Slot-level sharding: each slot serves through its own ShardedRanker,
    // so the swap validates and flips all shards as one unit.
    serve::SwappableRanker swapper(
        serve::SwappableRanker::Slot{AsModule(models[0].get()),
                                     MaybeShard(models[0].get())},
        serve::SwappableRanker::Slot{AsModule(models[1].get()),
                                     MaybeShard(models[1].get())},
        ds.num_items, swap_config);
    serve::MicroBatcher batcher(swapper, ds.num_items, config);
    const int64_t interval_us = args.GetI("swap_interval_us", 20000);
    std::thread rollout([&] {
      for (int64_t i = 0; i < swaps; ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(interval_us));
        if (Status s = swapper.SwapFromCheckpoint(swap_ckpt); !s.ok()) {
          std::printf("swap %lld not applied: %s\n", static_cast<long long>(i),
                      s.ToString().c_str());
        }
      }
    });
    report = serve::RunLoad(batcher, ds.train_seqs, load);
    rollout.join();
    std::printf("breaker state at end of storm: %s\n",
                serve::BreakerStateName(batcher.breaker().state()));
    batcher.Stop();
    swap_attempts = swaps;
    swap_success = swapper.swaps();
    swap_rejected = swapper.rejected();
    std::printf("swaps: attempted=%lld success=%lld rejected=%lld active_slot=%d\n",
                static_cast<long long>(swap_attempts),
                static_cast<long long>(swap_success),
                static_cast<long long>(swap_rejected), swapper.active_slot());
    std::remove(swap_ckpt.c_str());
  } else if (repeat_user_frac > 0.0) {
    // Returning-user drill: warm/cold mix through a per-session KV cache.
    serve::SessionCache cache(session_cache_mb << 20);
    serve::ServeConfig session_config = config;
    session_config.max_batch = 1;
    session_config.max_wait_us = 0;
    session_config.session_cache = &cache;
    serve::MicroBatcher batcher(*MaybeShard(model), ds.num_items, session_config);
    serve::SessionLoadConfig scfg;
    scfg.base = load;
    scfg.repeat_frac = repeat_user_frac;
    scfg.initial_len = session_initial_len;
    scfg.max_session_len = config.max_len;
    scfg.num_items = ds.num_items;
    scfg.seed = static_cast<uint64_t>(args.GetI("seed", 42));
    if (Status s = scfg.Validate(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
    serve::SessionLoadReport sreport = serve::RunSessionLoad(batcher, scfg);
    std::printf("breaker state at end of storm: %s\n",
                serve::BreakerStateName(batcher.breaker().state()));
    batcher.Stop();
    session = std::make_unique<SessionBenchOut>();
    session->report = sreport;
    session->cache = cache.stats();
    report = sreport.all;
    std::printf("sessions: warm=%lld cold=%lld hit_rate=%.3f\n",
                static_cast<long long>(sreport.warm),
                static_cast<long long>(sreport.cold), sreport.hit_rate);
    std::printf("warm latency: p50=%.0fus p95=%.0fus | cold latency: "
                "p50=%.0fus p95=%.0fus\n",
                sreport.warm_p50_us, sreport.warm_p95_us, sreport.cold_p50_us,
                sreport.cold_p95_us);
    std::printf("cache: hits=%lld misses=%lld evictions=%lld "
                "invalidations=%lld entries=%lld bytes=%lld\n",
                static_cast<long long>(session->cache.hits),
                static_cast<long long>(session->cache.misses),
                static_cast<long long>(session->cache.evictions),
                static_cast<long long>(session->cache.invalidations),
                static_cast<long long>(session->cache.entries),
                static_cast<long long>(session->cache.bytes));
  } else {
    serve::MicroBatcher batcher(*MaybeShard(model), ds.num_items, config);
    report = serve::RunLoad(batcher, ds.train_seqs, load);
    std::printf("breaker state at end of storm: %s\n",
                serve::BreakerStateName(batcher.breaker().state()));
    batcher.Stop();
  }

  std::printf("served %lld requests in %.3fs: %.1f qps\n",
              static_cast<long long>(report.requests), report.wall_s, report.qps);
  std::printf("latency: p50=%.0fus p95=%.0fus p99=%.0fus mean=%.0fus max=%.0fus\n",
              report.p50_us, report.p95_us, report.p99_us, report.mean_us,
              report.max_us);
  std::printf("outcomes: ok=%lld degraded=%lld shed=%lld deadline_expired=%lld "
              "errors=%lld garbage=%lld availability=%.4f\n",
              static_cast<long long>(report.ok),
              static_cast<long long>(report.degraded),
              static_cast<long long>(report.shed),
              static_cast<long long>(report.deadline_expired),
              static_cast<long long>(report.errors),
              static_cast<long long>(report.garbage), report.availability);
  const obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("serve.", 0) == 0) {
      std::printf("  %-28s %lld\n", name.c_str(), static_cast<long long>(value));
    }
  }
  if (const std::string json_path = args.Get("json"); !json_path.empty()) {
    if (int rc = WriteServeJson(json_path, report, replicas, swap_attempts,
                                swap_success, swap_rejected, session.get());
        rc != 0) {
      return rc;
    }
  }
  if (report.garbage != 0) return 1;
  // A corrupted rollout source must never go live.
  if (!swap_corrupt.empty() && swap_success != 0) return 1;
  // Killing a replica mid-storm legitimately fails its queued requests, so a
  // fleet drill judges availability rather than the raw error count.
  if (replicas > 1) return report.availability >= 0.99 ? 0 : 1;
  const bool errors_expected = chaos && no_fallback;
  return (errors_expected || report.errors == 0) ? 0 : 1;
}

// ---- online-train: crash-safe online loop drill (DESIGN.md §15) ----------

// Leg 1: seeded WAL crash/corruption schedules. Returns through the out
// params; `lost` counts committed (OK-returned) records missing from
// recovery, `spurious` recovered records that were never committed.
void RunWalSchedules(const std::string& root, int64_t schedules, int64_t records,
                     double torn_rate, double corrupt_rate, uint64_t fault_seed,
                     int64_t* committed_total, int64_t* lost, int64_t* spurious,
                     int64_t* torn, int64_t* corrupt) {
  for (int64_t schedule = 0; schedule < schedules; ++schedule) {
    const std::string dir = root + "/wal-sweep-" + std::to_string(schedule);
    runtime::OnlineFaultPlan plan;
    plan.seed = fault_seed + static_cast<uint64_t>(schedule);
    plan.torn_rate = torn_rate;
    plan.corrupt_rate = corrupt_rate;
    runtime::OnlineFaultInjector inj(plan);

    std::vector<data::InteractionEvent> committed;
    int64_t next_ts = 0;
    // A torn append kills the writer; reopen and continue, like the real loop.
    for (int lives = 0; lives < 16; ++lives) {
      data::EventLogWriter w;
      data::EventLogConfig cfg;
      cfg.dir = dir;
      cfg.segment_max_bytes = 3 * data::wal::kFrameBytes;
      cfg.fault_injector = &inj;
      if (!w.Open(cfg).ok()) break;
      while (!w.dead() && static_cast<int64_t>(committed.size()) < records) {
        data::InteractionEvent e{next_ts % 7, static_cast<int32_t>(next_ts % 11 + 1),
                                 next_ts};
        ++next_ts;
        const Status s = w.Append(e);
        if (s.ok()) {
          committed.push_back(e);
        } else if (!w.dead()) {
          ++*corrupt;
        } else {
          ++*torn;
        }
      }
      if (static_cast<int64_t>(committed.size()) >= records) {
        if (!w.dead()) (void)w.Close();
        break;
      }
    }
    *committed_total += static_cast<int64_t>(committed.size());

    auto rec = data::ReadEventLog(dir);
    if (!rec.ok()) {
      *lost += static_cast<int64_t>(committed.size());
      continue;
    }
    // Order is preserved, so a two-pointer subsequence walk separates lost
    // committed records from spurious recovered ones.
    size_t ci = 0;
    for (const data::InteractionEvent& got : rec.value().events) {
      if (ci < committed.size() && got == committed[ci]) {
        ++ci;
      } else {
        ++*spurious;
      }
    }
    *lost += static_cast<int64_t>(committed.size() - ci);
  }
}

int CmdOnlineTrain(const Args& args) {
  const std::string root = args.Get("dir", "/tmp/msgcl_online");
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  // ---- Leg 1: WAL crash/corruption schedules ----
  const int64_t schedules = args.GetI("wal_schedules", 20);
  int64_t wal_committed = 0, wal_lost = 0, wal_spurious = 0;
  int64_t wal_torn = 0, wal_corrupt = 0;
  RunWalSchedules(root, schedules, args.GetI("wal_records", 60),
                  args.GetD("torn_rate", 0.06), args.GetD("corrupt_rate", 0.10),
                  static_cast<uint64_t>(args.GetI("fault_seed", 0xA5A5)),
                  &wal_committed, &wal_lost, &wal_spurious, &wal_torn, &wal_corrupt);
  std::printf("wal sweep: %lld schedules, %lld committed, %lld lost, %lld spurious "
              "(%lld torn, %lld corrupt appends)\n",
              static_cast<long long>(schedules), static_cast<long long>(wal_committed),
              static_cast<long long>(wal_lost), static_cast<long long>(wal_spurious),
              static_cast<long long>(wal_torn), static_cast<long long>(wal_corrupt));

  // ---- Leg 2: full ingest -> train -> gate -> publish loop ----
  auto log_result = data::GenerateSynthetic(data::TinyDataset(
      static_cast<uint64_t>(args.GetI("seed", 31))));
  if (!log_result.ok()) {
    std::fprintf(stderr, "%s\n", log_result.status().ToString().c_str());
    return 1;
  }
  const data::InteractionLog& log = log_result.value();
  const data::SequenceDataset ds = data::LeaveOneOutSplit(log);

  runtime::OnlineTrainerConfig cfg;
  cfg.wal_dir = root + "/wal";
  cfg.serving_checkpoint = root + "/serving.ckpt";
  cfg.candidate_checkpoint = root + "/candidate.ckpt";
  cfg.quarantine_dir = root + "/quarantine";
  cfg.num_items = log.num_items;
  cfg.epochs_per_session = args.GetI("epochs_per_session", 2);
  cfg.telemetry_path = root + "/online.csv";
  // Floors sit between the trained tiny model (HR@10 > 0.3 after two epochs)
  // and the near-random ranking a poisoned model produces (~10/60).
  cfg.drift.min_hr = args.GetD("min_hr", 0.25);
  cfg.drift.min_hr_frac = args.GetD("min_hr_frac", 0.75);
  cfg.drift.min_ndcg_frac = args.GetD("min_ndcg_frac", 0.5);

  runtime::OnlineFaultPlan plan;
  plan.seed = static_cast<uint64_t>(args.GetI("fault_seed", 0xA5A5));
  plan.poison_update_sessions = ParseStepList(args.Get("poison_sessions", "1"));
  plan.crash_before_publish_sessions = ParseStepList(args.Get("crash_sessions"));
  runtime::OnlineFaultInjector inj(plan);
  cfg.fault_injector = &inj;

  {
    data::EventLogWriter w;
    data::EventLogConfig wal_cfg;
    wal_cfg.dir = cfg.wal_dir;
    if (Status s = w.Open(wal_cfg); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    int64_t ts = 0;
    for (size_t u = 0; u < log.sequences.size(); ++u) {
      for (int32_t item : log.sequences[u]) {
        if (!w.Append({static_cast<int64_t>(u), item, ts++}).ok()) return 1;
      }
    }
    if (!w.Close().ok()) return 1;
  }

  models::BackboneConfig backbone;
  backbone.num_items = ds.num_items;
  backbone.max_len = args.GetI("max_len", 12);
  backbone.dim = args.GetI("dim", 16);
  backbone.heads = args.GetI("heads", 2);
  backbone.layers = args.GetI("layers", 1);
  backbone.dropout = 0.1f;
  models::TrainConfig base;
  base.epochs = 2;  // overridden per session
  base.batch_size = 64;
  base.max_len = backbone.max_len;
  base.lr = static_cast<float>(args.GetD("lr", 3e-3));
  base.seed = static_cast<uint64_t>(args.GetI("seed", 31)) * 31 + 7;

  models::SasRec replica(backbone, base, Rng(5));
  models::SasRec slot_a(backbone, base, Rng(41));
  models::SasRec slot_b(backbone, base, Rng(42));

  serve::SwapConfig swap_cfg;
  swap_cfg.k = args.GetI("k", 10);
  swap_cfg.max_len = backbone.max_len;
  for (int32_t u = 0; u < std::min<int32_t>(4, ds.num_users()); ++u) {
    swap_cfg.golden.histories.push_back(ds.ValidInput(u));
    swap_cfg.golden.targets.push_back(ds.valid_targets[u]);
  }
  serve::SwappableRanker swapper({&slot_a, &slot_a}, {&slot_b, &slot_b},
                                 ds.num_items, swap_cfg);

  serve::ServeConfig serve_cfg;
  serve_cfg.k = swap_cfg.k;
  serve_cfg.max_len = backbone.max_len;
  serve_cfg.max_batch = 8;
  serve_cfg.max_wait_us = 200;
  serve_cfg.num_workers = 2;
  serve::MicroBatcher batcher(swapper, ds.num_items, serve_cfg);

  serve::ProbationConfig probation;
  probation.window_us = args.GetI("probation_us", 2000);
  probation.check_interval_us = 500;
  serve::PublishController publisher(swapper, probation, nullptr, &batcher);

  runtime::OnlineTrainer trainer(
      replica, replica,
      [&replica](const data::SequenceDataset& d, const models::TrainConfig& c) {
        return replica.FitWith(d, c);
      },
      base, cfg, &publisher);

  const int64_t sessions = args.GetI("sessions", 4);
  const int64_t probe_requests = args.GetI("probe_requests", 200);
  int64_t probe_ok = 0, probe_degraded = 0, probe_errors = 0;
  for (int64_t s = 0; s < sessions; ++s) {
    const Status status = trainer.RunSession();
    if (!status.ok()) {
      // An injected crash-between-train-and-publish is the drill exercising
      // restart recovery; anything else is a real failure.
      if (plan.crash_before_publish_sessions.count(s) == 0) {
        std::fprintf(stderr, "session %lld failed: %s\n", static_cast<long long>(s),
                     status.ToString().c_str());
        return 1;
      }
      std::printf("session %lld: injected crash before publish (restarting)\n",
                  static_cast<long long>(s));
      continue;
    }
    // Probe the fleet: every published (or kept) model must keep serving.
    std::vector<std::future<Result<serve::Response>>> futures;
    futures.reserve(static_cast<size_t>(probe_requests));
    for (int64_t r = 0; r < probe_requests; ++r) {
      serve::RecommendRequest req;
      req.history = ds.ValidInput(static_cast<int32_t>(r) % ds.num_users());
      futures.push_back(batcher.Submit(std::move(req)));
    }
    for (auto& f : futures) {
      auto resp = f.get();
      if (!resp.ok()) ++probe_errors;
      else if (resp.value().degraded) ++probe_degraded;
      else ++probe_ok;
    }
  }
  const runtime::OnlineLoopStats& stats = trainer.stats();
  const int64_t probed = probe_ok + probe_degraded + probe_errors;
  const double availability =
      probed == 0 ? 0.0 : static_cast<double>(probe_ok) / static_cast<double>(probed);

  // ---- Leg 3: forced probation trip -> bit-exact rollback ----
  serve::ProbationConfig trip_cfg;
  trip_cfg.window_us = 60'000'000;  // the trip always fires long before this
  trip_cfg.check_interval_us = 200;
  serve::PublishController tripper(swapper, trip_cfg, nullptr, &batcher);
  tripper.SetExtraTrip([](std::string* why) {
    *why = "drill: forced probation trip";
    return true;
  });
  const serve::PublishOutcome rollback = tripper.PublishAndProbe(replica);
  std::printf("forced rollback: rolled_back=%d bit_exact=%d (%s)\n",
              rollback.rolled_back ? 1 : 0, rollback.bit_exact ? 1 : 0,
              rollback.reason.c_str());

  std::printf("online loop: %lld sessions, %lld published, %lld quarantined, "
              "%lld poisoned (%lld blocked), %lld crashes; availability %.4f\n",
              static_cast<long long>(stats.sessions),
              static_cast<long long>(stats.published),
              static_cast<long long>(stats.quarantined),
              static_cast<long long>(stats.poisoned),
              static_cast<long long>(stats.poisoned_blocked),
              static_cast<long long>(stats.crashes), availability);

  const std::string json_path = args.Get("json");
  if (!json_path.empty()) {
    obs::JsonWriter json;
    json.BeginObject();
    json.Key("wal_schedules"); json.Int(schedules);
    json.Key("wal_committed"); json.Int(wal_committed);
    json.Key("wal_lost"); json.Int(wal_lost);
    json.Key("wal_spurious"); json.Int(wal_spurious);
    json.Key("wal_torn_appends"); json.Int(wal_torn);
    json.Key("wal_corrupt_appends"); json.Int(wal_corrupt);
    json.Key("sessions"); json.Int(stats.sessions);
    json.Key("trained"); json.Int(stats.trained);
    json.Key("published"); json.Int(stats.published);
    json.Key("quarantined"); json.Int(stats.quarantined);
    json.Key("publish_rejected"); json.Int(stats.publish_rejected);
    json.Key("poisoned"); json.Int(stats.poisoned);
    json.Key("poisoned_blocked"); json.Int(stats.poisoned_blocked);
    json.Key("crashes"); json.Int(stats.crashes);
    json.Key("events_consumed"); json.Int(stats.events_consumed);
    json.Key("swaps"); json.Int(swapper.swaps());
    json.Key("probe_requests"); json.Int(probed);
    json.Key("probe_ok"); json.Int(probe_ok);
    json.Key("probe_degraded"); json.Int(probe_degraded);
    json.Key("probe_errors"); json.Int(probe_errors);
    json.Key("availability"); json.Double(availability);
    json.Key("forced_rollback"); json.Int(rollback.rolled_back ? 1 : 0);
    json.Key("rollback_bit_exact"); json.Int(rollback.bit_exact ? 1 : 0);
    json.EndObject();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json.Take() << "\n";
  }

  if (wal_lost != 0 || wal_spurious != 0) return 1;
  if (stats.poisoned != stats.poisoned_blocked) return 1;
  if (availability < 0.99) return 1;
  if (!rollback.rolled_back || !rollback.bit_exact) return 1;
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: msgcl <generate|train|evaluate|recommend|serve-bench|online-train>"
               " [--flags]\n"
               "see the header of tools/msgcl_cli.cc for examples\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Args args(argc, argv);
  // Applies to every subcommand (evaluate/recommend run kernels too);
  // FitLoop re-applies TrainConfig::num_threads before training.
  if (const int64_t threads = args.GetI("threads", 0); threads > 0) {
    msgcl::parallel::SetNumThreads(static_cast<int>(threads));
  }
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "evaluate") return CmdEvaluate(args);
  if (cmd == "recommend") return CmdRecommend(args);
  if (cmd == "serve-bench") return CmdServeBench(args);
  if (cmd == "online-train") return CmdOnlineTrain(args);
  return Usage();
}
