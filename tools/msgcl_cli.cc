// msgcl — command-line interface to the Meta-SGCL library.
//
// Subcommands:
//   generate   write a synthetic interaction log as CSV
//   train      train a model on a CSV log (or a synthetic preset) and save
//              a checkpoint
//   evaluate   load a checkpoint and report HR/NDCG/MRR on the test split
//   recommend  load a checkpoint and print top-K items for one user
//
// Examples:
//   msgcl generate --preset=toys --scale=0.25 --out=toys.csv
//   msgcl train --data=toys.csv --model=Meta-SGCL --epochs=30 --ckpt=m.bin
//   msgcl evaluate --data=toys.csv --model=Meta-SGCL --ckpt=m.bin
//   msgcl recommend --data=toys.csv --model=Meta-SGCL --ckpt=m.bin --user=3
//
// Architecture flags (--dim, --layers, --heads, --max_len) must match
// between train and evaluate/recommend; the checkpoint loader verifies
// shapes and refuses mismatches.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "core/core.h"
#include "data/data.h"
#include "eval/eval.h"
#include "models/models.h"

namespace {

using namespace msgcl;

// Minimal --key=value parser (mirrors bench::Flags; tools stay standalone).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& k, std::string def = "") const {
    auto it = values_.find(k);
    return it == values_.end() ? def : it->second;
  }
  double GetD(const std::string& k, double def) const {
    auto it = values_.find(k);
    return it == values_.end() ? def : std::stod(it->second);
  }
  int64_t GetI(const std::string& k, int64_t def) const {
    auto it = values_.find(k);
    return it == values_.end() ? def : std::stoll(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

data::SyntheticConfig PresetByName(const std::string& name, double scale) {
  if (name == "clothing") return data::ClothingLike(scale);
  if (name == "toys") return data::ToysLike(scale);
  if (name == "ml1m") return data::Ml1mLike(scale);
  if (name == "tiny") return data::TinyDataset();
  std::fprintf(stderr, "unknown preset '%s' (clothing|toys|ml1m|tiny)\n", name.c_str());
  std::exit(2);
}

Result<data::InteractionLog> LoadData(const Args& args) {
  const std::string path = args.Get("data");
  if (!path.empty()) {
    data::CsvOptions opt;
    opt.k_core = static_cast<int32_t>(args.GetI("k_core", 5));
    opt.min_rating = args.GetD("min_rating", 4.0);
    return data::LoadCsv(path, opt);
  }
  return data::GenerateSynthetic(
      PresetByName(args.Get("preset", "toys"), args.GetD("scale", 0.25)));
}

std::unique_ptr<models::Recommender> MakeModel(const std::string& name,
                                               const data::SequenceDataset& ds,
                                               const Args& args) {
  models::BackboneConfig backbone;
  backbone.num_items = ds.num_items;
  backbone.max_len = args.GetI("max_len", 16);
  backbone.dim = args.GetI("dim", 32);
  backbone.heads = args.GetI("heads", 2);
  backbone.layers = args.GetI("layers", 1);
  backbone.dropout = static_cast<float>(args.GetD("dropout", 0.2));

  models::TrainConfig train;
  train.epochs = args.GetI("epochs", 30);
  train.max_len = backbone.max_len;
  train.lr = static_cast<float>(args.GetD("lr", 3e-3));
  train.batch_size = args.GetI("batch", 128);
  train.seed = args.GetI("seed", 42);
  train.eval_every = args.GetI("eval_every", 2);
  train.patience = args.GetI("patience", 4);
  train.verbose = args.Get("verbose") == "1";

  Rng rng(train.seed * 31 + 7);
  if (name == "SASRec") return std::make_unique<models::SasRec>(backbone, train, rng);
  if (name == "DuoRec") {
    models::DuoRecConfig c;
    c.backbone = backbone;
    c.tau = 0.5f;
    c.similarity = nn::Similarity::kCosine;
    return std::make_unique<models::DuoRec>(c, train, rng);
  }
  if (name == "ContrastVAE") {
    models::ContrastVaeConfig c;
    c.backbone = backbone;
    return std::make_unique<models::ContrastVae>(std::move(c), train, rng);
  }
  if (name == "Meta-SGCL") {
    core::MetaSgclConfig c;
    c.backbone = backbone;
    c.alpha = static_cast<float>(args.GetD("alpha", 0.1));
    c.beta = static_cast<float>(args.GetD("beta", 0.2));
    c.tau = static_cast<float>(args.GetD("tau", 1.0));
    c.use_decoder = args.GetI("use_decoder", 0) != 0;
    return std::make_unique<core::MetaSgcl>(c, train, rng);
  }
  std::fprintf(stderr, "unknown model '%s' (SASRec|DuoRec|ContrastVAE|Meta-SGCL)\n",
               name.c_str());
  std::exit(2);
}

nn::Module* AsModule(models::Recommender* r) {
  // All CLI-constructible models derive from nn::Module.
  return dynamic_cast<nn::Module*>(r);
}

int CmdGenerate(const Args& args) {
  auto cfg = PresetByName(args.Get("preset", "toys"), args.GetD("scale", 0.25));
  cfg.seed = args.GetI("seed", 42);
  auto log_result = data::GenerateSynthetic(cfg);
  if (!log_result.ok()) {
    std::fprintf(stderr, "%s\n", log_result.status().ToString().c_str());
    return 1;
  }
  const auto& log = log_result.value();
  const std::string out_path = args.Get("out", "synthetic.csv");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  for (int32_t u = 0; u < log.num_users(); ++u) {
    for (size_t t = 0; t < log.sequences[u].size(); ++t) {
      out << "u" << u << ",i" << log.sequences[u][t] << ",5," << t << "\n";
    }
  }
  std::printf("wrote %lld interactions (%d users, %d items) to %s\n",
              static_cast<long long>(log.num_interactions()), log.num_users(),
              log.num_items, out_path.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  auto log = LoadData(args);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  auto ds = data::LeaveOneOutSplit(log.value());
  const std::string model_name = args.Get("model", "Meta-SGCL");
  auto model = MakeModel(model_name, ds, args);
  std::printf("training %s on %d users / %d items...\n", model->name().c_str(),
              ds.num_users(), ds.num_items);
  model->Fit(ds);
  eval::EvalConfig ecfg;
  ecfg.max_len = args.GetI("max_len", 16);
  auto metrics = eval::Evaluate(*model, ds, eval::Split::kTest, ecfg);
  std::printf("test: %s MRR=%.4f\n", metrics.ToString().c_str(), metrics.mrr);
  const std::string ckpt = args.Get("ckpt");
  if (!ckpt.empty()) {
    Status s = nn::SaveCheckpoint(*AsModule(model.get()), ckpt);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint saved to %s\n", ckpt.c_str());
  }
  return 0;
}

int CmdEvaluate(const Args& args) {
  auto log = LoadData(args);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  auto ds = data::LeaveOneOutSplit(log.value());
  auto model = MakeModel(args.Get("model", "Meta-SGCL"), ds, args);
  Status s = nn::LoadCheckpoint(*AsModule(model.get()), args.Get("ckpt"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  AsModule(model.get())->SetTraining(false);
  eval::EvalConfig ecfg;
  ecfg.max_len = args.GetI("max_len", 16);
  auto test = eval::Evaluate(*model, ds, eval::Split::kTest, ecfg);
  auto valid = eval::Evaluate(*model, ds, eval::Split::kValidation, ecfg);
  std::printf("valid: %s MRR=%.4f\n", valid.ToString().c_str(), valid.mrr);
  std::printf("test:  %s MRR=%.4f\n", test.ToString().c_str(), test.mrr);
  return 0;
}

int CmdRecommend(const Args& args) {
  auto log = LoadData(args);
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  auto ds = data::LeaveOneOutSplit(log.value());
  auto model = MakeModel(args.Get("model", "Meta-SGCL"), ds, args);
  Status s = nn::LoadCheckpoint(*AsModule(model.get()), args.Get("ckpt"));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  AsModule(model.get())->SetTraining(false);
  const int32_t user = static_cast<int32_t>(args.GetI("user", 0));
  if (user < 0 || user >= ds.num_users()) {
    std::fprintf(stderr, "user %d out of range [0, %d)\n", user, ds.num_users());
    return 1;
  }
  eval::RecommendOptions opt;
  opt.k = args.GetI("k", 10);
  opt.max_len = args.GetI("max_len", 16);
  auto recs = eval::RecommendTopK(*model, ds.TestInput(user), ds.num_items, opt);
  std::printf("top-%lld recommendations for user %d:\n", static_cast<long long>(opt.k),
              user);
  for (const auto& r : recs) std::printf("  item %-6d score %.4f\n", r.item, r.score);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: msgcl <generate|train|evaluate|recommend> [--flags]\n"
               "see the header of tools/msgcl_cli.cc for examples\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Args args(argc, argv);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "evaluate") return CmdEvaluate(args);
  if (cmd == "recommend") return CmdRecommend(args);
  return Usage();
}
