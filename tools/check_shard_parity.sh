#!/usr/bin/env bash
# Shard-parity drill for intra-model sharded scoring (DESIGN.md §14).
#
# Drives `msgcl serve-bench --shard_parity` — which bit-compares the sharded
# score→top-k merge against unsharded fused scoring over real histories —
# for SASRec and Meta-SGCL under both kernel dispatches (MSGCL_SIMD=scalar
# and avx2; on hardware without AVX2 the avx2 request clamps to scalar, so
# the run stays meaningful rather than being skipped). Any bitwise mismatch
# fails the drill.
#
# Usage: tools/check_shard_parity.sh [msgcl_bin|build_dir] [shards]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="${1:-build/tools/msgcl}"
if [[ -d "$BIN" ]]; then BIN="$BIN/tools/msgcl"; fi
SHARDS="${2:-4}"

if [[ ! -x "$BIN" ]]; then
  echo "== building msgcl_cli"
  cmake --build "$(dirname "$(dirname "$BIN")")" --target msgcl_cli -j "$(nproc)" >/dev/null
fi

for model in SASRec Meta-SGCL; do
  for isa in scalar avx2; do
    echo "== shard parity: model=$model S=$SHARDS MSGCL_SIMD=$isa"
    MSGCL_SIMD="$isa" "$BIN" serve-bench --preset=tiny --model="$model" \
      --max_len=12 --dim=16 --shards="$SHARDS" --shard_parity --k=10
  done
done

echo "PASS: sharded scoring is bit-identical to unsharded for both models and both dispatches"
