#!/usr/bin/env bash
# Shard-kill chaos drill for the replicated serving fleet (DESIGN.md §10–11).
#
# Drives `msgcl serve-bench` with 3 consistent-hash replicas and scoring
# faults injected into ~10% of batches, kills replica 1 mid-storm, restarts
# it later, then asserts on the JSON report:
#
#   1. availability >= MIN_AVAILABILITY (default 0.99): nearly every request
#      is answered with a usable top-k list — model-scored, failed over to a
#      healthy replica, or degraded to the popularity fallback;
#   2. garbage == 0: no response ever carries a non-finite score or an
#      over-long list — faults and the kill degrade, they never leak garbage.
#
# Usage: tools/check_chaos_drill.sh [msgcl_bin|build_dir] [min_availability] [fault_rate]
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="${1:-build/tools/msgcl}"
if [[ -d "$BIN" ]]; then BIN="$BIN/tools/msgcl"; fi
MIN_AVAILABILITY="${2:-0.99}"
FAULT_RATE="${3:-0.10}"

if [[ ! -x "$BIN" ]]; then
  echo "== building msgcl_cli"
  cmake --build "$(dirname "$(dirname "$BIN")")" --target msgcl_cli -j "$(nproc)" >/dev/null
fi

d=$(mktemp -d); trap 'rm -rf "$d"' EXIT
JSON="$d/chaos_drill.json"

echo "== shard-kill drill: 3 replicas, fault_rate=$FAULT_RATE, kill replica 1 mid-storm"
"$BIN" serve-bench --preset=tiny --model=SASRec --max_len=12 --dim=16 \
  --replicas=3 --chaos --fault_rate="$FAULT_RATE" \
  --requests=2000 --clients=6 --max_batch=8 --max_wait_us=200 \
  --kill_replica=1 --kill_replica_after_us=30000 --restart_replica_after_us=150000 \
  --json="$JSON"

availability=$(sed -n 's/.*"availability": *\([0-9.eE+-]*\).*/\1/p' "$JSON" | head -1)
garbage=$(sed -n 's/.*"garbage": *\([0-9-]*\).*/\1/p' "$JSON" | head -1)

if [[ -z "$availability" || -z "$garbage" ]]; then
  echo "FAIL: could not parse availability/garbage from $JSON" >&2
  exit 1
fi

echo "== availability=$availability (require >= $MIN_AVAILABILITY), garbage=$garbage (require 0)"

ok=$(awk -v a="$availability" -v m="$MIN_AVAILABILITY" -v g="$garbage" \
  'BEGIN { print (a >= m && g == 0) ? "yes" : "no" }')
if [[ "$ok" != "yes" ]]; then
  echo "FAIL: shard-kill drill violated availability/garbage bounds" >&2
  exit 1
fi
echo "PASS: fleet stayed available with zero garbage through faults + replica kill"
