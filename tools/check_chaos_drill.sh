#!/usr/bin/env bash
# Chaos drill for the serving resilience layer (DESIGN.md §10).
#
# Runs bench_serving in chaos mode — a seeded fraction of scoring batches
# throw or return NaN-poisoned scores — with the circuit breaker and the
# popularity fallback active, then asserts on the JSON report:
#
#   1. min_availability >= MIN_AVAILABILITY (default 0.99): nearly every
#      request is answered with a usable top-k list, model-scored or degraded;
#   2. total_garbage == 0: no response ever carries a non-finite score or an
#      over-long list — failed batches degrade, they never leak garbage.
#
# Usage: tools/check_chaos_drill.sh [build_dir] [min_availability] [fault_rate]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
MIN_AVAILABILITY="${2:-0.99}"
FAULT_RATE="${3:-0.10}"
BENCH="$BUILD/bench/bench_serving"
JSON="$BUILD/chaos_drill.json"

if [[ ! -x "$BENCH" ]]; then
  echo "== building bench_serving in $BUILD"
  cmake --build "$BUILD" --target bench_serving -j "$(nproc)" >/dev/null
fi

echo "== chaos drill: fault_rate=$FAULT_RATE, fallback on"
"$BENCH" --quick --chaos --fault_rate="$FAULT_RATE" --json="$JSON"

availability=$(sed -n 's/.*"min_availability": *\([0-9.eE+-]*\).*/\1/p' "$JSON" | head -1)
garbage=$(sed -n 's/.*"total_garbage": *\([0-9-]*\).*/\1/p' "$JSON" | head -1)

if [[ -z "$availability" || -z "$garbage" ]]; then
  echo "FAIL: could not parse min_availability/total_garbage from $JSON" >&2
  exit 1
fi

echo "== min_availability=$availability (require >= $MIN_AVAILABILITY), total_garbage=$garbage (require 0)"

ok=$(awk -v a="$availability" -v m="$MIN_AVAILABILITY" -v g="$garbage" \
  'BEGIN { print (a >= m && g == 0) ? "yes" : "no" }')
if [[ "$ok" != "yes" ]]; then
  echo "FAIL: chaos drill violated availability/garbage bounds" >&2
  exit 1
fi
echo "PASS: serving stayed available with zero garbage under injected faults"
